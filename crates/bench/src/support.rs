//! Shared experiment-harness plumbing: scale selection, system runners,
//! and table printing.

use transedge_baselines::augustus::AugustusDeployment;
use transedge_baselines::build_two_pc_bft;
use transedge_common::{SimDuration, SimTime};
use transedge_core::client::ClientOp;
use transedge_core::metrics::{summarize, OpKind, Summary, TxnSample};
use transedge_core::setup::{Deployment, DeploymentConfig};
use transedge_core::EdgeConfig;

/// Which system executes a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    TransEdge,
    /// TransEdge with an untrusted edge read cache fronting each
    /// partition (one honest edge node per cluster; clients' read-only
    /// rounds go through it and verify the replies end to end).
    TransEdgeWithEdges,
    TwoPcBft,
    Augustus,
}

impl System {
    pub fn name(&self) -> &'static str {
        match self {
            System::TransEdge => "TransEdge",
            System::TransEdgeWithEdges => "TransEdge+edge",
            System::TwoPcBft => "2PC/BFT",
            System::Augustus => "Augustus",
        }
    }
}

/// Experiment scale, chosen by the `REPRO_FULL` environment variable.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub full: bool,
}

impl Scale {
    pub fn detect() -> Scale {
        Scale {
            full: std::env::var("REPRO_FULL").is_ok_and(|v| v == "1"),
        }
    }

    /// Pick between a quick and a full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }

    pub fn n_keys(&self) -> u32 {
        self.pick(10_000, 1_000_000)
    }
}

/// Outcome of one experiment run.
pub struct RunResult {
    pub samples: Vec<TxnSample>,
    /// Measurement window (first sample start → last sample end).
    pub window: SimDuration,
    /// Augustus only: read-write aborts attributed to read-only locks.
    pub rw_aborts_by_rot: u64,
}

impl RunResult {
    pub fn summary(&self, kind: Option<OpKind>) -> Summary {
        summarize(&self.samples, kind)
    }

    pub fn throughput(&self, kind: Option<OpKind>) -> f64 {
        transedge_core::metrics::throughput_tps(&self.samples, kind, self.window)
    }

    pub fn abort_percent(&self, kind: Option<OpKind>) -> f64 {
        transedge_core::metrics::abort_percent(&self.samples, kind)
    }

    fn from_samples(samples: Vec<TxnSample>, rw_aborts_by_rot: u64) -> RunResult {
        let window = match (
            samples.iter().map(|s| s.start).min(),
            samples.iter().map(|s| s.end).max(),
        ) {
            (Some(a), Some(b)) => b.saturating_since(a),
            _ => SimDuration::ZERO,
        };
        RunResult {
            samples,
            window,
            rw_aborts_by_rot,
        }
    }
}

/// Default wall limit for a run (simulated time).
pub fn sim_limit() -> SimTime {
    SimTime(3_600_000_000) // one simulated hour, a generous ceiling
}

/// Execute `client_ops` on the chosen system and collect samples.
pub fn run_system(
    system: System,
    config: DeploymentConfig,
    client_ops: Vec<Vec<ClientOp>>,
) -> RunResult {
    match system {
        System::TransEdge | System::TransEdgeWithEdges => {
            let mut config = config;
            if system == System::TransEdgeWithEdges && config.edge.per_cluster == 0 {
                config.edge = EdgeConfig::honest(1);
            }
            let mut dep = Deployment::build(config, client_ops);
            dep.run_until_done(sim_limit());
            RunResult::from_samples(dep.samples(), 0)
        }
        System::TwoPcBft => {
            let mut dep = build_two_pc_bft(config, client_ops);
            dep.run_until_done(sim_limit());
            RunResult::from_samples(dep.samples(), 0)
        }
        System::Augustus => {
            let mut dep = AugustusDeployment::build(config, client_ops);
            dep.run_until_done(sim_limit());
            let aborts = dep.rw_aborts_caused_by_rot();
            RunResult::from_samples(dep.samples(), aborts)
        }
    }
}

/// Split a flat op list round-robin over `n` clients.
pub fn split_clients(ops: Vec<ClientOp>, n: usize) -> Vec<Vec<ClientOp>> {
    let mut scripts: Vec<Vec<ClientOp>> = vec![Vec::new(); n];
    for (i, op) in ops.into_iter().enumerate() {
        scripts[i % n].push(op);
    }
    scripts
}

// ---------------------------------------------------------------------
// Report printing
// ---------------------------------------------------------------------

/// Print an experiment banner.
pub fn banner(id: &str, caption: &str, scale: Scale) {
    println!();
    println!("=== {id} — {caption} ===");
    println!(
        "    mode: {} (REPRO_FULL={} for paper scale)",
        if scale.full { "FULL" } else { "quick" },
        if scale.full { "1 ✓" } else { "1" }
    );
}

/// Print one aligned table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("  {}", line.join(" "));
}

pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("  {}", "-".repeat(15 * cells.len()));
}

pub fn fmt_ms(v: f64) -> String {
    format!("{v:.2} ms")
}

pub fn fmt_tps(v: f64) -> String {
    format!("{v:.0} tps")
}

pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2} %")
}

/// Print the paper's reference series for eyeball comparison.
pub fn paper_reference(lines: &[&str]) {
    println!("  paper reference:");
    for l in lines {
        println!("    {l}");
    }
}

/// Standard experiment configuration: paper topology and latency model
/// at full scale; a lighter cluster (f = 1) in quick mode so the whole
/// suite finishes in minutes. The shape of every figure is preserved —
/// `f` only scales quorum sizes uniformly.
pub fn experiment_config(scale: Scale) -> DeploymentConfig {
    use transedge_common::ClusterTopology;
    let f = scale.pick(1, 2);
    DeploymentConfig {
        topo: ClusterTopology::new(5, f).expect("topology"),
        n_keys: scale.pick(10_000, 1_000_000),
        ..DeploymentConfig::default()
    }
}
