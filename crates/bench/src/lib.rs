//! # transedge-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the
//! paper's evaluation (§5), plus criterion micro-benchmarks that
//! calibrate the simulator's CPU cost model.
//!
//! Each figure is a `harness = false` bench target (so
//! `cargo bench --workspace` runs the full reproduction) that prints
//! the same rows/series the paper plots, next to the paper's reference
//! values. Absolute numbers come from a simulator, not the authors'
//! testbed — the *shape* (who wins, by what factor, where curves bend)
//! is the reproduction target; see EXPERIMENTS.md for the comparison.
//!
//! Scale: by default experiments run at reduced scale so the whole
//! suite finishes in minutes. Set `REPRO_FULL=1` for paper-scale
//! parameters (more keys, more clients, all sweep points).

pub mod json;
pub mod support;
