use std::time::Instant;
use transedge_crypto::{sha256, Keypair};

fn main() {
    let kp = Keypair::from_seed([1; 32]);
    let msg = b"calibration message for timing";
    let t = Instant::now();
    let n = 200;
    let mut sigs = Vec::new();
    for i in 0..n {
        sigs.push(kp.sign(&[msg.as_slice(), &[i as u8]].concat()));
    }
    println!("sign:   {:?}/op", t.elapsed() / n);
    let t = Instant::now();
    for (i, s) in sigs.iter().enumerate() {
        assert!(kp
            .public()
            .verify(&[msg.as_slice(), &[i as u8]].concat(), s));
    }
    println!("verify: {:?}/op", t.elapsed() / n);
    let t = Instant::now();
    let data = vec![0u8; 1024];
    for _ in 0..10000 {
        std::hint::black_box(sha256(&data));
    }
    println!("sha256-1KiB: {:?}/op", t.elapsed() / 10000);
}
