//! A minimal typed JSON writer for the bench emitters.
//!
//! `BENCH_rot.json` and its siblings used to be assembled from
//! `format!` strings, which made every schema bump a brace-counting
//! exercise and let a stray `,` produce unparseable output. This
//! module builds the document as a value tree and serialises it in one
//! pass: keys keep insertion order (deterministic output byte for
//! byte), strings are escaped, and non-finite floats — which would
//! silently emit invalid JSON as `NaN`/`inf` — become `null` so the
//! schema gate in `scripts/validate_bench.sh` flags them.
//!
//! Deliberately not a parser and not serde: the benches only ever
//! *write* JSON, the container has no serde, and twenty lines of
//! escaping beat a dependency.

use std::fmt::Write as _;

/// One JSON value. Floats are serialised with four decimal places
/// (the precision every bench block already used); integers exactly.
#[derive(Clone, Debug)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Uint(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(JsonObject),
}

/// An insertion-ordered JSON object under construction.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Builder-style append (replaces an existing key in place so a
    /// block can be assembled incrementally without duplicate keys).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.set(key, value);
        self
    }

    /// In-place append/replace.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) {
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Serialise the whole tree, pretty-printed with two-space
    /// indentation and a trailing newline (the layout the trajectory
    /// tooling diffs).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_object(&mut out, self, 0);
        out.push('\n');
        out
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Uint(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Uint(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Uint(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        JsonValue::Object(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}
impl From<Vec<JsonObject>> for JsonValue {
    fn from(v: Vec<JsonObject>) -> Self {
        JsonValue::Array(v.into_iter().map(JsonValue::Object).collect())
    }
}

fn write_value(out: &mut String, value: &JsonValue, indent: usize) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Uint(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Int(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:.4}");
            } else {
                // NaN/inf have no JSON spelling; null makes the
                // validator fail loudly instead of jq failing to parse.
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Array(items) => write_array(out, items, indent),
        JsonValue::Object(obj) => write_object(out, obj, indent),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_array(out: &mut String, items: &[JsonValue], indent: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, item) in items.iter().enumerate() {
        pad(out, indent + 1);
        write_value(out, item, indent + 1);
        out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
    }
    pad(out, indent);
    out.push(']');
}

fn write_object(out: &mut String, obj: &JsonObject, indent: usize) {
    if obj.fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (key, value)) in obj.fields.iter().enumerate() {
        pad(out, indent + 1);
        write_string(out, key);
        out.push_str(": ");
        write_value(out, value, indent + 1);
        out.push_str(if i + 1 < obj.fields.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    pad(out, indent);
    out.push('}');
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let doc = JsonObject::new()
            .field("figure", "fig04")
            .field("version", 9u64)
            .field("ratio", 0.25f64)
            .field("ok", true)
            .field(
                "inner",
                JsonObject::new()
                    .field("mean_ms", 1.5f64)
                    .field("n", 3usize),
            )
            .field("rows", vec![JsonValue::Uint(1), JsonValue::Uint(2)]);
        let s = doc.to_pretty();
        assert_eq!(
            s,
            "{\n  \"figure\": \"fig04\",\n  \"version\": 9,\n  \"ratio\": 0.2500,\n  \"ok\": true,\n  \"inner\": {\n    \"mean_ms\": 1.5000,\n    \"n\": 3\n  },\n  \"rows\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let doc = JsonObject::new().field("s", "a\"b\\c\nd\u{1}");
        assert_eq!(
            doc.to_pretty(),
            "{\n  \"s\": \"a\\\"b\\\\c\\nd\\u0001\"\n}\n"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let doc = JsonObject::new()
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        assert_eq!(doc.to_pretty(), "{\n  \"nan\": null,\n  \"inf\": null\n}\n");
    }

    #[test]
    fn set_replaces_in_place() {
        let mut doc = JsonObject::new().field("a", 1u64).field("b", 2u64);
        doc.set("a", 9u64);
        assert_eq!(doc.to_pretty(), "{\n  \"a\": 9,\n  \"b\": 2\n}\n");
    }

    #[test]
    fn empty_containers() {
        let doc = JsonObject::new()
            .field("obj", JsonObject::new())
            .field("arr", Vec::<JsonValue>::new());
        assert_eq!(doc.to_pretty(), "{\n  \"obj\": {},\n  \"arr\": []\n}\n");
    }
}
