//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all TransEdge crates.
pub type Result<T, E = TransEdgeError> = std::result::Result<T, E>;

/// Errors surfaced by TransEdge protocol code.
///
/// Protocol-level rejections (transaction aborts, unsatisfied
/// dependencies) are *not* errors — they are ordinary outcomes carried
/// in protocol types. Errors here mean a request cannot be interpreted
/// or verified at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransEdgeError {
    /// Malformed wire bytes.
    Decode(String),
    /// A cryptographic check failed (bad signature, wrong digest,
    /// Merkle proof mismatch). In a byzantine setting this is evidence
    /// of misbehaviour, not a bug.
    Verification(String),
    /// A quorum requirement could not be met from the supplied
    /// signatures/votes.
    QuorumNotMet { wanted: usize, got: usize },
    /// Reference to an unknown cluster, replica or batch.
    Unknown(String),
    /// Configuration is internally inconsistent (e.g. replicas != 3f+1).
    Config(String),
    /// An operation was routed to a node that cannot serve it (e.g. a
    /// commit request sent to a non-leader that refuses to forward).
    WrongNode(String),
}

impl fmt::Display for TransEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransEdgeError::Decode(m) => write!(f, "decode error: {m}"),
            TransEdgeError::Verification(m) => write!(f, "verification failed: {m}"),
            TransEdgeError::QuorumNotMet { wanted, got } => {
                write!(f, "quorum not met: wanted {wanted}, got {got}")
            }
            TransEdgeError::Unknown(m) => write!(f, "unknown reference: {m}"),
            TransEdgeError::Config(m) => write!(f, "bad configuration: {m}"),
            TransEdgeError::WrongNode(m) => write!(f, "wrong node: {m}"),
        }
    }
}

impl std::error::Error for TransEdgeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TransEdgeError::QuorumNotMet { wanted: 3, got: 1 };
        assert_eq!(e.to_string(), "quorum not met: wanted 3, got 1");
        let e = TransEdgeError::Verification("bad root".into());
        assert!(e.to_string().contains("bad root"));
    }
}
