//! Simulated time.
//!
//! The whole system runs under a discrete-event simulator
//! (`transedge-simnet`), so "time" is a logical quantity measured in
//! microseconds since simulation start. Keeping the types here (rather
//! than in the simulator crate) lets protocol crates speak about
//! timeouts and freshness windows without depending on the simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::wire::{Decode, Encode, WireReader, WireWriter};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero (a byzantine
    /// leader may stamp batches in the future; callers must not panic).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a float factor (used for jitter); rounds to nearest µs.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics on negative spans; use [`SimTime::saturating_since`] when
    /// the ordering is untrusted.
    #[inline]
    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Encode for SimTime {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for SimTime {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(SimTime(r.get_u64()?))
    }
}

impl Encode for SimDuration {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for SimDuration {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(SimDuration(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(1_000) + SimDuration::from_millis(2);
        assert_eq!(t, SimTime(3_000));
        assert_eq!(t - SimTime(1_000), SimDuration(2_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn saturating_since_handles_future_stamps() {
        let early = SimTime(100);
        let late = SimTime(500);
        assert_eq!(late.saturating_since(early), SimDuration(400));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(100).mul_f64(1.5), SimDuration(150));
        assert_eq!(SimDuration(3).mul_f64(0.5), SimDuration(2)); // 1.5 rounds to 2
        assert_eq!(SimDuration(100).mul_f64(-1.0), SimDuration(0));
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(SimTime(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(70).to_string(), "70.000ms");
    }
}
