//! Key and value payload types.
//!
//! The paper's workload uses 4-byte keys and 256-byte values, but
//! nothing in the protocol depends on those sizes, so both types wrap
//! arbitrary byte strings. `Value` uses [`bytes::Bytes`] so that the
//! many copies a value makes through batches, logs and responses share
//! one allocation.

use std::fmt;

use bytes::Bytes;

use crate::wire::{Decode, Encode, WireReader, WireWriter};

/// A data object's key. Keys are mapped to partitions by hashing
/// (see `ClusterTopology::partition_of`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Bytes);

impl Key {
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Key(bytes.into())
    }

    /// The paper's 4-byte integer keys.
    pub fn from_u32(k: u32) -> Self {
        Key(Bytes::copy_from_slice(&k.to_be_bytes()))
    }

    pub fn from_u64(k: u64) -> Self {
        Key(Bytes::copy_from_slice(&k.to_be_bytes()))
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(")?;
        for b in self.0.iter() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<&[u8]> for Key {
    fn from(s: &[u8]) -> Self {
        Key(Bytes::copy_from_slice(s))
    }
}

/// A data object's value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Value(Bytes);

impl Value {
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// A value of `len` bytes filled with a marker byte — handy for
    /// workload generation.
    pub fn filled(len: usize, marker: u8) -> Self {
        Value(Bytes::from(vec![marker; len]))
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.len() <= 8 {
            write!(f, "Value(")?;
            for b in self.0.iter() {
                write!(f, "{b:02x}")?;
            }
            write!(f, ")")
        } else {
            write!(f, "Value({} bytes)", self.0.len())
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl Encode for Key {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(&self.0);
    }
}

impl Decode for Key {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(Key(Bytes::from(r.get_bytes()?)))
    }
}

impl Encode for Value {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(&self.0);
    }
}

impl Decode for Value {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(Value(Bytes::from(r.get_bytes()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn key_constructors() {
        assert_eq!(Key::from_u32(1).as_bytes(), &[0, 0, 0, 1]);
        assert_eq!(Key::from_u32(1).len(), 4);
        assert_eq!(Key::from("abc").as_bytes(), b"abc");
    }

    #[test]
    fn value_cloning_shares_memory() {
        let v = Value::filled(256, 0xAB);
        let w = v.clone();
        // Bytes shares the allocation: same pointer.
        assert_eq!(v.as_bytes().as_ptr(), w.as_bytes().as_ptr());
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(&Key::from_u64(999));
        roundtrip(&Value::filled(256, 7));
        roundtrip(&Value::new(Bytes::new()));
    }

    #[test]
    fn keys_order_bytewise() {
        // Big-endian integer keys preserve numeric order — relied on by
        // range-scan examples.
        assert!(Key::from_u32(1) < Key::from_u32(2));
        assert!(Key::from_u32(255) < Key::from_u32(256));
    }
}
