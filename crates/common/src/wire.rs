//! Deterministic wire encoding.
//!
//! Protocol messages in TransEdge are hashed and signed, so the byte
//! representation of every signable structure must be canonical: the
//! same value always encodes to the same bytes on every node. `serde`
//! alone does not provide a byte format and no serialisation-format
//! crate is available offline, so the workspace uses this small,
//! explicit little-endian / length-prefixed encoding instead.
//!
//! The format:
//! * fixed-width integers: little-endian;
//! * byte strings and sequences: `u32` length prefix followed by the
//!   items;
//! * enums: a leading `u8` tag chosen by each type's impl.
//!
//! Decoding is used by tests and by byzantine-behaviour harnesses that
//! deliberately corrupt messages; the happy path of the simulator passes
//! typed messages around and only encodes when a digest or signature is
//! required.

use crate::error::{Result, TransEdgeError};

/// Serialise `self` into a canonical byte stream.
pub trait Encode {
    fn encode(&self, w: &mut WireWriter);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Deserialise from a canonical byte stream produced by [`Encode`].
pub trait Decode: Sized {
    fn decode(r: &mut WireReader<'_>) -> Result<Self>;

    /// Convenience: decode a complete buffer, requiring full consumption.
    fn decode_all(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(TransEdgeError::Decode(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// Append-only byte sink for [`Encode`] impls.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes, no length prefix. Only for fixed-size fields (digests,
    /// signatures) whose length is implied by the schema.
    pub fn put_fixed(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed sequence of encodable items.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_u32(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor over a byte stream for [`Decode`] impls.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(TransEdgeError::Decode(format!(
                "wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    #[inline]
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    #[inline]
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    #[inline]
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Fixed-size field (length implied by schema).
    pub fn get_fixed<const N: usize>(&mut self) -> Result<[u8; N]> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Length-prefixed sequence of decodable items.
    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>> {
        let len = self.get_u32()? as usize;
        // Guard against hostile length prefixes: cap the pre-allocation.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

// Blanket impls for common shapes.

impl Encode for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        r.get_u32()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        r.get_bytes()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(self);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(TransEdgeError::Decode(format!("bad Option tag {t}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Test helper: assert that a value round-trips through the wire format.
pub fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = value.encode_to_vec();
    let back = T::decode_all(&bytes).expect("decode");
    assert_eq!(&back, value, "wire roundtrip mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&7u32);
        roundtrip(&vec![1u8, 2, 3]);
        roundtrip(&Vec::<u8>::new());
        roundtrip(&Some(5u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(3u32, vec![9u8]));
    }

    #[test]
    fn little_endian_layout_is_stable() {
        let mut w = WireWriter::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut w = WireWriter::new();
        w.put_bytes(b"ab");
        assert_eq!(w.as_slice(), &[2, 0, 0, 0, b'a', b'b']);
    }

    #[test]
    fn decode_all_rejects_trailing_garbage() {
        let mut bytes = 5u64.encode_to_vec();
        bytes.push(0xFF);
        assert!(u64::decode_all(&bytes).is_err());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 5u64.encode_to_vec();
        assert!(u64::decode_all(&bytes[..4]).is_err());
        assert!(Vec::<u8>::decode_all(&[10, 0, 0, 0, 1, 2]).is_err());
    }

    #[test]
    fn hostile_length_prefix_does_not_oom() {
        // Sequence claiming u32::MAX entries but providing none.
        let bytes = u32::MAX.encode_to_vec();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_seq::<u64>().is_err());
    }
}
