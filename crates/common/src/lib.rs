//! # transedge-common
//!
//! Shared vocabulary types for the TransEdge workspace: identifiers for
//! clusters/replicas/clients/transactions/batches, simulated time,
//! key/value payload types, a deterministic wire encoding used for
//! hashing and signing, cluster topology configuration, and the common
//! error type.
//!
//! Every other crate in the workspace depends on this one; it depends on
//! nothing but the standard library (plus `bytes` for cheap payload
//! sharing).

pub mod config;
pub mod error;
pub mod ids;
pub mod time;
pub mod value;
pub mod wire;

pub use config::{ClusterTopology, TopologyBuilder};
pub use error::{Result, TransEdgeError};
pub use ids::{BatchNum, ClientId, ClusterId, EdgeId, Epoch, NodeId, ReplicaId, TxnId, ViewNum};
pub use time::{SimDuration, SimTime};
pub use value::{Key, Value};
pub use wire::{Decode, Encode, WireReader, WireWriter};
