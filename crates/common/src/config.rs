//! Cluster topology configuration.
//!
//! TransEdge divides nodes into clusters; each cluster holds one data
//! partition and consists of `3f+1` replicas, tolerating `f` byzantine
//! nodes (paper §2, §3.1). The paper's evaluation uses 5 clusters of 7
//! replicas (`f = 2`); [`ClusterTopology::paper_default`] reproduces
//! that.
//!
//! Keys are mapped to partitions by hashing ("Keys are uniformly
//! distributed across the clusters using hashing", §5.1). We use FNV-1a
//! here: the *assignment* of keys to partitions is not security
//! sensitive (integrity comes from the per-partition Merkle trees), it
//! just needs to be uniform and deterministic, and keeping it local
//! avoids a dependency cycle with the crypto crate.

use crate::error::{Result, TransEdgeError};
use crate::ids::{ClusterId, ReplicaId};
use crate::value::Key;

/// Static description of the whole deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTopology {
    n_clusters: u16,
    f: u16,
}

impl ClusterTopology {
    /// A topology of `n_clusters` clusters, each tolerating `f`
    /// byzantine replicas (so each cluster has `3f+1` members).
    pub fn new(n_clusters: u16, f: u16) -> Result<Self> {
        if n_clusters == 0 {
            return Err(TransEdgeError::Config("need at least one cluster".into()));
        }
        if f == 0 {
            return Err(TransEdgeError::Config(
                "f = 0 would make the BFT layer pointless; use f >= 1".into(),
            ));
        }
        Ok(Self { n_clusters, f })
    }

    /// The paper's evaluation setup: 5 clusters × 7 replicas (f = 2).
    pub fn paper_default() -> Self {
        Self {
            n_clusters: 5,
            f: 2,
        }
    }

    /// Number of clusters (== number of partitions).
    pub fn n_clusters(&self) -> usize {
        self.n_clusters as usize
    }

    /// Byzantine failures tolerated per cluster.
    pub fn f(&self) -> usize {
        self.f as usize
    }

    /// Replicas per cluster: `3f + 1`.
    pub fn replicas_per_cluster(&self) -> usize {
        3 * self.f as usize + 1
    }

    /// Size of a BFT write/accept quorum: `2f + 1`.
    pub fn bft_quorum(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Signatures needed to certify a batch to clients: `f + 1`
    /// (at least one is from a correct replica).
    pub fn certificate_quorum(&self) -> usize {
        self.f as usize + 1
    }

    /// All cluster ids.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.n_clusters).map(ClusterId)
    }

    /// All replicas of one cluster.
    pub fn replicas_of(&self, cluster: ClusterId) -> impl Iterator<Item = ReplicaId> + '_ {
        let n = self.replicas_per_cluster() as u16;
        (0..n).map(move |i| ReplicaId::new(cluster, i))
    }

    /// Every replica in the deployment.
    pub fn all_replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.clusters().flat_map(move |c| {
            let n = self.replicas_per_cluster() as u16;
            (0..n).map(move |i| ReplicaId::new(c, i))
        })
    }

    /// Total replica count across all clusters.
    pub fn total_replicas(&self) -> usize {
        self.n_clusters() * self.replicas_per_cluster()
    }

    /// The partition (cluster) responsible for `key`.
    pub fn partition_of(&self, key: &Key) -> ClusterId {
        ClusterId((fnv1a(key.as_bytes()) % self.n_clusters as u64) as u16)
    }

    /// Validate that a replica id belongs to this topology.
    pub fn contains(&self, replica: ReplicaId) -> bool {
        replica.cluster.0 < self.n_clusters
            && (replica.index as usize) < self.replicas_per_cluster()
    }
}

/// FNV-1a 64-bit hash (key→partition placement only; not security
/// sensitive — see module docs).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fluent builder for non-default topologies used by tests and benches.
#[derive(Default)]
pub struct TopologyBuilder {
    n_clusters: Option<u16>,
    f: Option<u16>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn clusters(mut self, n: u16) -> Self {
        self.n_clusters = Some(n);
        self
    }

    pub fn fault_tolerance(mut self, f: u16) -> Self {
        self.f = Some(f);
        self
    }

    pub fn build(self) -> Result<ClusterTopology> {
        ClusterTopology::new(self.n_clusters.unwrap_or(5), self.f.unwrap_or(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let t = ClusterTopology::paper_default();
        assert_eq!(t.n_clusters(), 5);
        assert_eq!(t.f(), 2);
        assert_eq!(t.replicas_per_cluster(), 7);
        assert_eq!(t.bft_quorum(), 5);
        assert_eq!(t.certificate_quorum(), 3);
        assert_eq!(t.total_replicas(), 35);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ClusterTopology::new(0, 1).is_err());
        assert!(ClusterTopology::new(3, 0).is_err());
    }

    #[test]
    fn replica_enumeration() {
        let t = ClusterTopology::new(2, 1).unwrap();
        let reps: Vec<_> = t.replicas_of(ClusterId(1)).collect();
        assert_eq!(reps.len(), 4);
        assert_eq!(reps[0], ReplicaId::new(ClusterId(1), 0));
        assert_eq!(t.all_replicas().count(), 8);
    }

    #[test]
    fn partitioning_is_deterministic_and_in_range() {
        let t = ClusterTopology::paper_default();
        for i in 0..1000u32 {
            let k = Key::from_u32(i);
            let p = t.partition_of(&k);
            assert!(p.0 < 5);
            assert_eq!(p, t.partition_of(&k));
        }
    }

    #[test]
    fn partitioning_is_roughly_uniform() {
        let t = ClusterTopology::paper_default();
        let mut counts = [0usize; 5];
        let n = 50_000u32;
        for i in 0..n {
            counts[t.partition_of(&Key::from_u32(i)).as_usize()] += 1;
        }
        let expected = n as usize / 5;
        for (c, &count) in counts.iter().enumerate() {
            let dev = (count as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "cluster {c} got {count}, expected ~{expected}");
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let t = ClusterTopology::new(2, 1).unwrap();
        assert!(t.contains(ReplicaId::new(ClusterId(0), 3)));
        assert!(!t.contains(ReplicaId::new(ClusterId(0), 4)));
        assert!(!t.contains(ReplicaId::new(ClusterId(2), 0)));
    }

    #[test]
    fn builder_defaults_to_paper_setup() {
        let t = TopologyBuilder::new().build().unwrap();
        assert_eq!(t, ClusterTopology::paper_default());
        let t = TopologyBuilder::new()
            .clusters(3)
            .fault_tolerance(1)
            .build()
            .unwrap();
        assert_eq!(t.replicas_per_cluster(), 4);
    }
}
