//! Identifier newtypes used across the workspace.
//!
//! All identifiers are small `Copy` types with explicit, stable wire
//! encodings (see [`crate::wire`]), so they can appear inside signed
//! messages without ambiguity.

use std::fmt;

use crate::wire::{Decode, Encode, WireReader, WireWriter};

/// Identifies one data partition and the cluster of `3f+1` replicas that
/// maintains it. Partitions and clusters are 1:1 in TransEdge, so a
/// single id serves both roles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClusterId(pub u16);

impl ClusterId {
    /// Index helper for dense per-cluster tables (CD vectors and the
    /// like are indexed by cluster).
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// One replica (edge node) within a cluster. `index` ranges over
/// `0..3f+1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReplicaId {
    pub cluster: ClusterId,
    pub index: u16,
}

impl ReplicaId {
    pub fn new(cluster: ClusterId, index: u16) -> Self {
        Self { cluster, index }
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/r{}", self.cluster, self.index)
    }
}

/// A client application driving transactions against the system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// An untrusted edge read node fronting one partition's ROT traffic.
/// Edge nodes hold no keys and take part in no consensus: they replay
/// proof-carrying responses that clients verify end to end, so a
/// deployment can add them freely to scale the read path.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId {
    /// Partition whose reads this node serves.
    pub cluster: ClusterId,
    pub index: u16,
}

impl EdgeId {
    pub fn new(cluster: ClusterId, index: u16) -> Self {
        Self { cluster, index }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/e{}", self.cluster, self.index)
    }
}

/// Address of any process in the system — used by the network simulator
/// for routing and by protocol messages for provenance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    Replica(ReplicaId),
    Client(ClientId),
    Edge(EdgeId),
}

impl NodeId {
    /// The replica id, if this is a replica address.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The client id, if this is a client address.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The edge node id, if this is an edge address.
    pub fn as_edge(self) -> Option<EdgeId> {
        match self {
            NodeId::Edge(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
            NodeId::Edge(e) => write!(f, "{e}"),
        }
    }
}

impl From<EdgeId> for NodeId {
    fn from(e: EdgeId) -> Self {
        NodeId::Edge(e)
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

/// Globally unique transaction identifier: issuing client plus a
/// client-local sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId {
    pub client: ClientId,
    pub seq: u64,
}

impl TxnId {
    pub fn new(client: ClientId, seq: u64) -> Self {
        Self { client, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.client.0, self.seq)
    }
}

/// Position of a batch in one cluster's SMR log. The paper writes
/// `b^X_i`; this is the `i`. Batches are written strictly one-by-one, so
/// `BatchNum` doubles as the batch's logical timestamp within the
/// partition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BatchNum(pub u64);

impl BatchNum {
    #[inline]
    pub fn next(self) -> BatchNum {
        BatchNum(self.0 + 1)
    }

    #[inline]
    pub fn as_epoch(self) -> Epoch {
        Epoch(self.0 as i64)
    }
}

impl fmt::Display for BatchNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A batch number *or* the paper's `-1` sentinel.
///
/// The paper initialises CD-vector entries and the Last Committed Epoch
/// to `-1` to mean "no dependency yet" / "nothing committed yet"
/// (Figure 2). Encoding that sentinel in the type keeps comparisons like
/// "dependency satisfied iff `LCE >= V[X]`" identical to the paper's
/// arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Epoch(pub i64);

impl Epoch {
    /// The `-1` sentinel: no dependency / nothing committed.
    pub const NONE: Epoch = Epoch(-1);

    #[inline]
    pub fn is_none(self) -> bool {
        self.0 < 0
    }

    /// Converts to a concrete batch number, if not the sentinel.
    #[inline]
    pub fn batch(self) -> Option<BatchNum> {
        (self.0 >= 0).then_some(BatchNum(self.0 as u64))
    }

    #[inline]
    pub fn max(self, other: Epoch) -> Epoch {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::NONE
    }
}

impl From<BatchNum> for Epoch {
    fn from(b: BatchNum) -> Self {
        Epoch(b.0 as i64)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "-1")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Consensus view number (which replica currently leads a cluster).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ViewNum(pub u64);

impl ViewNum {
    #[inline]
    pub fn next(self) -> ViewNum {
        ViewNum(self.0 + 1)
    }

    /// The leader's replica index in a cluster of `n` replicas under
    /// round-robin leader rotation.
    #[inline]
    pub fn leader_index(self, n: usize) -> u16 {
        (self.0 % n as u64) as u16
    }
}

impl fmt::Display for ViewNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

// ---- wire encodings ----

impl Encode for ClusterId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u16(self.0);
    }
}

impl Decode for ClusterId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(ClusterId(r.get_u16()?))
    }
}

impl Encode for ReplicaId {
    fn encode(&self, w: &mut WireWriter) {
        self.cluster.encode(w);
        w.put_u16(self.index);
    }
}

impl Decode for ReplicaId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(ReplicaId {
            cluster: ClusterId::decode(r)?,
            index: r.get_u16()?,
        })
    }
}

impl Encode for ClientId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.0);
    }
}

impl Decode for ClientId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(ClientId(r.get_u32()?))
    }
}

impl Encode for NodeId {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            NodeId::Replica(rep) => {
                w.put_u8(0);
                rep.encode(w);
            }
            NodeId::Client(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            NodeId::Edge(e) => {
                w.put_u8(2);
                e.encode(w);
            }
        }
    }
}

impl Decode for NodeId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        match r.get_u8()? {
            0 => Ok(NodeId::Replica(ReplicaId::decode(r)?)),
            1 => Ok(NodeId::Client(ClientId::decode(r)?)),
            2 => Ok(NodeId::Edge(EdgeId::decode(r)?)),
            t => Err(crate::TransEdgeError::Decode(format!("bad NodeId tag {t}"))),
        }
    }
}

impl Encode for EdgeId {
    fn encode(&self, w: &mut WireWriter) {
        self.cluster.encode(w);
        w.put_u16(self.index);
    }
}

impl Decode for EdgeId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(EdgeId {
            cluster: ClusterId::decode(r)?,
            index: r.get_u16()?,
        })
    }
}

impl Encode for TxnId {
    fn encode(&self, w: &mut WireWriter) {
        self.client.encode(w);
        w.put_u64(self.seq);
    }
}

impl Decode for TxnId {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(TxnId {
            client: ClientId::decode(r)?,
            seq: r.get_u64()?,
        })
    }
}

impl Encode for BatchNum {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for BatchNum {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(BatchNum(r.get_u64()?))
    }
}

impl Encode for Epoch {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0 as u64);
    }
}

impl Decode for Epoch {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(Epoch(r.get_u64()? as i64))
    }
}

impl Encode for ViewNum {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0);
    }
}

impl Decode for ViewNum {
    fn decode(r: &mut WireReader<'_>) -> crate::Result<Self> {
        Ok(ViewNum(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn epoch_sentinel_semantics() {
        assert!(Epoch::NONE.is_none());
        assert_eq!(Epoch::NONE.batch(), None);
        assert_eq!(Epoch(3).batch(), Some(BatchNum(3)));
        assert_eq!(Epoch::NONE.max(Epoch(0)), Epoch(0));
        assert_eq!(Epoch(7).max(Epoch(2)), Epoch(7));
        // -1 sentinel is smaller than every real epoch, as in the paper.
        assert!(Epoch::NONE < Epoch(0));
    }

    #[test]
    fn epoch_from_batch() {
        assert_eq!(Epoch::from(BatchNum(5)), Epoch(5));
        assert_eq!(BatchNum(5).as_epoch(), Epoch(5));
    }

    #[test]
    fn view_leader_rotation() {
        // 4 replicas: views cycle 0,1,2,3,0,...
        assert_eq!(ViewNum(0).leader_index(4), 0);
        assert_eq!(ViewNum(3).leader_index(4), 3);
        assert_eq!(ViewNum(4).leader_index(4), 0);
        assert_eq!(ViewNum(9).leader_index(4), 1);
    }

    #[test]
    fn id_wire_roundtrips() {
        roundtrip(&ClusterId(7));
        roundtrip(&ReplicaId::new(ClusterId(2), 3));
        roundtrip(&ClientId(42));
        roundtrip(&NodeId::Replica(ReplicaId::new(ClusterId(1), 0)));
        roundtrip(&NodeId::Client(ClientId(9)));
        roundtrip(&NodeId::Edge(EdgeId::new(ClusterId(2), 1)));
        roundtrip(&EdgeId::new(ClusterId(0), 3));
        roundtrip(&TxnId::new(ClientId(1), 77));
        roundtrip(&BatchNum(123));
        roundtrip(&Epoch::NONE);
        roundtrip(&Epoch(55));
        roundtrip(&ViewNum(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClusterId(3).to_string(), "C3");
        assert_eq!(ReplicaId::new(ClusterId(0), 2).to_string(), "C0/r2");
        assert_eq!(TxnId::new(ClientId(1), 5).to_string(), "t1.5");
        assert_eq!(BatchNum(9).to_string(), "b9");
        assert_eq!(Epoch::NONE.to_string(), "-1");
        assert_eq!(EdgeId::new(ClusterId(1), 2).to_string(), "C1/e2");
    }
}
