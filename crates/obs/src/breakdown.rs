//! Per-phase latency decomposition of completed traces, plus the
//! workspace's single nearest-rank percentile implementation.

use transedge_common::SimTime;

use crate::trace::{CompletedTrace, SpanPhase};

/// Nearest-rank percentile over an ascending-sorted slice: the element
/// at `round((len - 1) * p)`. Returns `0.0` for an empty slice. This
/// is the one percentile definition every consumer in the workspace
/// shares (client metrics, histograms, bench emitters).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// [`percentile`] over integer samples (same nearest-rank semantics).
pub fn percentile_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One trace's end-to-end latency split into its phase components, in
/// microseconds of [`transedge_common::SimTime`].
///
/// The split is exact by construction: round-1 CPU phases (`queue`,
/// `serve`, `verify`, `gossip`) are summed from their spans, `round2`
/// is the wall-clock tail after round-1 settles, and `wire` is the
/// residual — everything the operation spent on the network (request
/// transit recorded as `Wire` spans plus untraced response transit).
/// `queue + wire + serve + verify + round2 + gossip == e2e` whenever
/// the summed CPU phases fit inside the wall clock (always, for the
/// single-threaded client; server CPU overlapping across a parallel
/// fan-out can in principle push the sum past `e2e`, in which case
/// `wire` clamps at zero and the exporter reports the overshoot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub e2e_us: u64,
    pub queue_us: u64,
    pub wire_us: u64,
    pub serve_us: u64,
    pub verify_us: u64,
    pub round2_us: u64,
    pub gossip_us: u64,
}

impl PhaseBreakdown {
    /// Decompose one completed trace.
    pub fn decompose(trace: &CompletedTrace) -> Self {
        let root = trace.root_span();
        let e2e_us = root.duration().as_micros();
        // Round 2 spans wall clock from when round 1 settled to the
        // operation's end; without one, round 1 ran to the end.
        let r2_start: SimTime = trace
            .spans_of(SpanPhase::Round2)
            .map(|s| s.start)
            .min()
            .unwrap_or(root.end);
        let sum_before = |phase: SpanPhase| -> u64 {
            trace
                .spans_of(phase)
                .filter(|s| s.start < r2_start)
                .map(|s| s.duration().as_micros())
                .sum()
        };
        let queue_us = sum_before(SpanPhase::Queue);
        let serve_us = sum_before(SpanPhase::Serve);
        let verify_us = sum_before(SpanPhase::Verify);
        let gossip_us = sum_before(SpanPhase::Gossip);
        let round2_us = root.end.saturating_since(r2_start).as_micros();
        let wire_us =
            e2e_us.saturating_sub(queue_us + serve_us + verify_us + gossip_us + round2_us);
        PhaseBreakdown {
            e2e_us,
            queue_us,
            wire_us,
            serve_us,
            verify_us,
            round2_us,
            gossip_us,
        }
    }

    /// Sum of every component (equals `e2e_us` unless overlapping
    /// server CPU clamped the wire residual).
    pub fn components_sum_us(&self) -> u64 {
        self.queue_us
            + self.wire_us
            + self.serve_us
            + self.verify_us
            + self.round2_us
            + self.gossip_us
    }
}

/// Decompose the trace sitting at the nearest-rank percentile `p` of
/// `traces` by end-to-end latency. This decomposes *the actual
/// percentile operation* — its components sum to its own end-to-end
/// number, which summed per-phase percentiles would not.
pub fn breakdown_at_percentile(traces: &[&CompletedTrace], p: f64) -> Option<PhaseBreakdown> {
    if traces.is_empty() {
        return None;
    }
    let mut by_e2e: Vec<&CompletedTrace> = traces.to_vec();
    by_e2e.sort_by_key(|t| (t.end_to_end(), t.trace));
    let idx = ((by_e2e.len() as f64 - 1.0) * p).round() as usize;
    Some(PhaseBreakdown::decompose(by_e2e[idx.min(by_e2e.len() - 1)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceContext, TraceId, TraceLog};
    use transedge_common::{ClientId, ClusterId, NodeId, ReplicaId};

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0); // round(1.5) = 2
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile_u64(&[10, 20, 30], 0.95), 30);
    }

    fn build_trace(op: u32, e2e: u64, with_round2: bool) -> CompletedTrace {
        let mut log = TraceLog::new();
        let t = TraceId::for_op(0, op);
        let client = NodeId::Client(ClientId(0));
        let server = NodeId::Replica(ReplicaId::new(ClusterId(0), 0));
        let root = log.begin(t, client, SimTime(0), "rot");
        let tc = TraceContext {
            trace: t,
            span: root,
        };
        log.span(
            tc,
            SpanPhase::Wire,
            server,
            SimTime(0),
            SimTime(100),
            "read-point",
        );
        log.span(
            tc,
            SpanPhase::Queue,
            server,
            SimTime(100),
            SimTime(150),
            "read-point",
        );
        log.span(
            tc,
            SpanPhase::Serve,
            server,
            SimTime(150),
            SimTime(350),
            "read-point",
        );
        log.span(
            tc,
            SpanPhase::Verify,
            client,
            SimTime(450),
            SimTime(500),
            "read-result",
        );
        if with_round2 {
            log.span(
                tc,
                SpanPhase::Round2,
                client,
                SimTime(500),
                SimTime(e2e),
                "round-2",
            );
        }
        log.complete(t, SimTime(e2e));
        log.last_completed().unwrap().clone()
    }

    #[test]
    fn decompose_components_sum_to_e2e() {
        let trace = build_trace(0, 900, true);
        let b = PhaseBreakdown::decompose(&trace);
        assert_eq!(b.e2e_us, 900);
        assert_eq!(b.queue_us, 50);
        assert_eq!(b.serve_us, 200);
        assert_eq!(b.verify_us, 50);
        assert_eq!(b.round2_us, 400);
        assert_eq!(b.wire_us, 200); // residual: 900 - 700
        assert_eq!(b.components_sum_us(), b.e2e_us);
    }

    #[test]
    fn decompose_without_round2_charges_round1_only() {
        let trace = build_trace(1, 600, false);
        let b = PhaseBreakdown::decompose(&trace);
        assert_eq!(b.round2_us, 0);
        assert_eq!(b.components_sum_us(), 600);
    }

    #[test]
    fn percentile_breakdown_picks_the_actual_trace() {
        let traces: Vec<CompletedTrace> = (0..10)
            .map(|i| build_trace(i, 600 + u64::from(i) * 100, i % 2 == 0))
            .collect();
        let refs: Vec<&CompletedTrace> = traces.iter().collect();
        let p95 = breakdown_at_percentile(&refs, 0.95).unwrap();
        assert_eq!(p95.e2e_us, 1500); // round(9 * 0.95) = 9th
        assert_eq!(p95.components_sum_us(), p95.e2e_us);
        assert!(breakdown_at_percentile(&[], 0.5).is_none());
    }
}
