//! Deterministic observability plane for the TransEdge simulation.
//!
//! Three coordinated facilities, all driven purely by
//! [`SimTime`](transedge_common::SimTime) so every artifact is
//! bit-identical across runs of the same seed:
//!
//! * **Causal traces** ([`trace`]): a [`TraceId`] + [`SpanId`] context
//!   minted per client operation and propagated through every
//!   request-direction network hop. The simulator records typed span
//!   phases ([`SpanPhase`]) — queueing behind a busy actor, wire
//!   transit, server CPU, client-side verification, round-2 — into a
//!   [`TraceLog`]; completed traces land in a bounded flight-recorder
//!   ring for post-mortem dumps.
//! * **Unified metrics** ([`metrics`]): a [`MetricRegistry`] of
//!   counters, gauges and fixed log-bucket histograms that the
//!   workspace's per-subsystem `*Stats` structs register into via
//!   [`RegisterMetrics`], giving per-node scopes and fleet-wide
//!   rollups through one typed API.
//! * **Exporters** ([`chrome`], [`breakdown`]): Chrome-trace-format
//!   JSON (load into `chrome://tracing` / Perfetto) and per-phase
//!   latency decompositions of nearest-rank percentile traces (the
//!   fig04 `obs` block).
//!
//! # Determinism contract
//!
//! Recording NEVER feeds back into the simulation: the trace log and
//! registry consume no simulated CPU, send no messages, and draw no
//! randomness. Span identifiers come from a plain counter advanced in
//! event order, so an instrumented run schedules *exactly* the events
//! an uninstrumented one would.

pub mod breakdown;
pub mod chrome;
pub mod metrics;
pub mod trace;

pub use breakdown::{breakdown_at_percentile, percentile, percentile_u64, PhaseBreakdown};
pub use chrome::chrome_trace_json;
pub use metrics::{Histogram, MetricRegistry, RegisterMetrics};
pub use trace::{
    CompletedTrace, Span, SpanId, SpanPhase, TraceContext, TraceId, TraceLog,
    DEFAULT_FLIGHT_CAPACITY,
};
