//! Chrome-trace-format exporter: render completed traces as a JSON
//! document loadable in `chrome://tracing` / Perfetto.
//!
//! Each span becomes one complete event (`"ph": "X"`): `ts`/`dur` in
//! microseconds straight from `SimTime`, `pid` the trace's client
//! index (one "process" per client), `tid` a deterministic ordinal of
//! the node the time was spent on. Thread-name metadata events label
//! every `tid` with the node's display name.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use transedge_common::NodeId;

use crate::trace::CompletedTrace;

/// Append `s` to `out` JSON-escaped (without surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render `traces` as one Chrome-trace JSON document.
pub fn chrome_trace_json<'a>(traces: impl IntoIterator<Item = &'a CompletedTrace>) -> String {
    let traces: Vec<&CompletedTrace> = traces.into_iter().collect();
    // Deterministic tid assignment: every node that appears, sorted.
    let mut tids: BTreeMap<NodeId, u64> = BTreeMap::new();
    for t in &traces {
        for s in &t.spans {
            let next = tids.len() as u64;
            tids.entry(s.node).or_insert(next);
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (node, tid) in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, &node.to_string());
        out.push_str("\"}}");
    }
    for t in &traces {
        for s in &t.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_into(&mut out, s.label);
            out.push_str("\",\"cat\":\"");
            out.push_str(s.phase.tag());
            out.push_str("\",\"ph\":\"X\",\"ts\":");
            let _ = write!(out, "{}", s.start.0);
            out.push_str(",\"dur\":");
            let _ = write!(out, "{}", s.end.saturating_since(s.start).as_micros());
            out.push_str(",\"pid\":");
            let _ = write!(out, "{}", t.trace.client());
            out.push_str(",\"tid\":");
            let _ = write!(out, "{}", tids[&s.node]);
            out.push_str(",\"args\":{\"trace\":\"");
            escape_into(&mut out, &t.trace.to_string());
            out.push_str("\",\"span\":");
            let _ = write!(out, "{}", s.id.0);
            if let Some(parent) = s.parent {
                out.push_str(",\"parent\":");
                let _ = write!(out, "{}", parent.0);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanPhase, TraceContext, TraceId, TraceLog};
    use transedge_common::{ClientId, ClusterId, ReplicaId, SimTime};

    #[test]
    fn exports_complete_events_with_stable_tids() {
        let mut log = TraceLog::new();
        let t = TraceId::for_op(3, 1);
        let client = NodeId::Client(ClientId(3));
        let server = NodeId::Replica(ReplicaId::new(ClusterId(0), 0));
        let root = log.begin(t, client, SimTime(0), "rot");
        let tc = TraceContext {
            trace: t,
            span: root,
        };
        log.span(
            tc,
            SpanPhase::Wire,
            server,
            SimTime(0),
            SimTime(250),
            "read-point",
        );
        log.complete(t, SimTime(1000));
        let json = chrome_trace_json(log.completed());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"cat\":\"wire\""));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"pid\":3"));
        assert!(json.contains("\"trace\":\"trace:3/1\""));
    }

    #[test]
    fn empty_input_is_valid_json() {
        let json = chrome_trace_json(std::iter::empty());
        assert_eq!(json, "{\"traceEvents\":[]}");
    }
}
