//! The unified metric registry: typed counters, gauges, and fixed
//! log-bucket histograms, keyed by `(scope, name)` with fleet-wide
//! rollups across scopes.
//!
//! Every per-subsystem `*Stats` struct in the workspace implements
//! [`RegisterMetrics`], publishing its counters under a node-scoped
//! name (`"client:3"`, `"edge:0/1"`, …); a harness builds one registry
//! per snapshot and reads either a single scope or the fleet total
//! through one API instead of N hand-plumbed accessor sets.

use std::collections::BTreeMap;

use crate::breakdown::percentile_u64;

/// Number of log buckets: one per power of two of a `u64` value, plus
/// the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log-bucket histogram over `u64` samples (microseconds,
/// bytes, counts — caller's choice of unit). Bucket `i` holds values
/// whose bit length is `i`, i.e. `v == 0` → bucket 0, otherwise
/// `2^(i-1) <= v < 2^i`. Deterministic and allocation-free after
/// construction.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`: the largest value it can
    /// hold.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, resolved to the containing bucket's
    /// upper bound (exact for min/max, bucket-granular in between).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_upper(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Merge another histogram into this one (fleet rollups).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Implemented by each subsystem's stats struct: publish your counters
/// into `reg` under `scope`.
pub trait RegisterMetrics {
    fn register_metrics(&self, scope: &str, reg: &mut MetricRegistry);
}

/// The registry: `(scope, name)`-keyed counters, gauges, and
/// histograms, stored in `BTreeMap`s so iteration (and every exporter
/// built on it) is deterministic.
#[derive(Default)]
pub struct MetricRegistry {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), i64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `value` to the counter `scope/name` (creates at zero).
    pub fn counter(&mut self, scope: &str, name: &str, value: u64) {
        *self
            .counters
            .entry((scope.to_string(), name.to_string()))
            .or_insert(0) += value;
    }

    /// Set the gauge `scope/name` to `value`.
    pub fn gauge(&mut self, scope: &str, name: &str, value: i64) {
        self.gauges
            .insert((scope.to_string(), name.to_string()), value);
    }

    /// Record `value` into the histogram `scope/name`.
    pub fn observe(&mut self, scope: &str, name: &str, value: u64) {
        self.histograms
            .entry((scope.to_string(), name.to_string()))
            .or_default()
            .observe(value);
    }

    /// Let `source` publish itself under `scope`.
    pub fn register(&mut self, scope: &str, source: &dyn RegisterMetrics) {
        source.register_metrics(scope, self);
    }

    /// A single scope's counter (0 if absent).
    pub fn counter_value(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .get(&(scope.to_string(), name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// A single scope's gauge.
    pub fn gauge_value(&self, scope: &str, name: &str) -> Option<i64> {
        self.gauges
            .get(&(scope.to_string(), name.to_string()))
            .copied()
    }

    /// A single scope's histogram.
    pub fn histogram(&self, scope: &str, name: &str) -> Option<&Histogram> {
        self.histograms.get(&(scope.to_string(), name.to_string()))
    }

    /// Fleet rollup: the counter summed across every scope.
    pub fn fleet_counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Fleet rollup of every counter name (sorted by name).
    pub fn fleet_counters(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for ((_, name), v) in &self.counters {
            *out.entry(name.clone()).or_insert(0) += v;
        }
        out
    }

    /// Fleet rollup: one histogram merging every scope's `name`.
    pub fn fleet_histogram(&self, name: &str) -> Histogram {
        let mut merged = Histogram::new();
        for ((_, n), h) in &self.histograms {
            if n == name {
                merged.merge(h);
            }
        }
        merged
    }

    /// Every registered scope, sorted and deduplicated.
    pub fn scopes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|(s, _)| s.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All counters in `(scope, name, value)` order (deterministic).
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((s, n), v)| (s.as_str(), n.as_str(), *v))
    }

    /// Total number of registered series.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exact nearest-rank percentile over raw samples — re-exported here
/// so histogram users and raw-sample users share one definition.
pub fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    percentile_u64(sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2034);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1024);
        // Median (rank 3 of 7) falls in bucket 2 (values 2..=3).
        assert_eq!(h.quantile(0.5), 3);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        a.observe(10);
        let mut b = Histogram::new();
        b.observe(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 10);
    }

    struct FakeStats {
        hits: u64,
        misses: u64,
    }

    impl RegisterMetrics for FakeStats {
        fn register_metrics(&self, scope: &str, reg: &mut MetricRegistry) {
            reg.counter(scope, "hits", self.hits);
            reg.counter(scope, "misses", self.misses);
        }
    }

    #[test]
    fn registry_scopes_and_fleet_rollup() {
        let mut reg = MetricRegistry::new();
        reg.register(
            "edge:0/0",
            &FakeStats {
                hits: 10,
                misses: 2,
            },
        );
        reg.register("edge:0/1", &FakeStats { hits: 5, misses: 1 });
        reg.gauge("edge:0/0", "cached_objects", 42);
        reg.observe("edge:0/0", "serve_us", 100);
        reg.observe("edge:0/1", "serve_us", 900);
        assert_eq!(reg.counter_value("edge:0/0", "hits"), 10);
        assert_eq!(reg.fleet_counter("hits"), 15);
        assert_eq!(reg.fleet_counters()["misses"], 3);
        assert_eq!(reg.gauge_value("edge:0/0", "cached_objects"), Some(42));
        assert_eq!(reg.fleet_histogram("serve_us").count(), 2);
        assert_eq!(reg.scopes(), vec!["edge:0/0", "edge:0/1"]);
        assert!(!reg.is_empty());
    }
}
