//! Causal trace model: identifiers, spans, the per-simulation trace
//! log, and the bounded flight-recorder ring of completed traces.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use transedge_common::{NodeId, SimDuration, SimTime};

/// How many completed traces the flight recorder retains by default.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Identity of one traced client operation, stable across every hop
/// the operation touches. Minted deterministically from the client's
/// index and its per-client operation counter — no randomness, so the
/// same seed yields the same ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Compose a trace id from a client index and that client's
    /// operation counter.
    pub fn for_op(client: u32, op: u32) -> Self {
        TraceId((u64::from(client) << 32) | u64::from(op))
    }

    /// The client index this trace was minted for.
    pub fn client(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The per-client operation counter this trace was minted for.
    pub fn op(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace:{}/{}", self.client(), self.op())
    }
}

/// Identity of one span within a simulation, allocated from a plain
/// counter advanced in event order (deterministic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

/// The propagation context a request-direction message carries: which
/// trace it belongs to and which span caused it (the new hop's spans
/// parent under `span`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceContext {
    pub trace: TraceId,
    pub span: SpanId,
}

/// What kind of time a span accounts for.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanPhase {
    /// The root span of a traced operation, client start → completion.
    Op,
    /// A delivery waited behind a busy actor's CPU.
    Queue,
    /// Network transit of one request-direction message.
    Wire,
    /// Server-side CPU spent handling a traced delivery.
    Serve,
    /// Client-side CPU spent verifying a response (or a rejection
    /// marker).
    Verify,
    /// The dependency-check round of Algorithm 2 (round-1 settled →
    /// operation completion).
    Round2,
    /// Directory traffic caused by the operation (demotion markers).
    Gossip,
}

impl SpanPhase {
    /// Stable lowercase tag (exporters, JSON).
    pub fn tag(self) -> &'static str {
        match self {
            SpanPhase::Op => "op",
            SpanPhase::Queue => "queue",
            SpanPhase::Wire => "wire",
            SpanPhase::Serve => "serve",
            SpanPhase::Verify => "verify",
            SpanPhase::Round2 => "round2",
            SpanPhase::Gossip => "gossip",
        }
    }
}

/// One timed, attributed interval of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub trace: TraceId,
    pub id: SpanId,
    /// The span this one causally descends from (`None` only for the
    /// root `Op` span).
    pub parent: Option<SpanId>,
    pub phase: SpanPhase,
    /// Where the time was spent (wire spans: the destination).
    pub node: NodeId,
    pub start: SimTime,
    pub end: SimTime,
    /// Static annotation: the message kind for wire/serve spans, or a
    /// marker tag (`"forward"`, `"rejected"`, `"demoted"`, `"retry"`,
    /// `"gave-up"`).
    pub label: &'static str,
}

impl Span {
    /// The span's extent.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A finished trace, frozen into the flight recorder: the root span id
/// plus every span recorded while the trace was open, in recording
/// order.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    pub trace: TraceId,
    pub root: SpanId,
    pub spans: Vec<Span>,
}

impl CompletedTrace {
    /// The root `Op` span.
    pub fn root_span(&self) -> &Span {
        self.spans
            .iter()
            .find(|s| s.id == self.root)
            .expect("completed trace retains its root span")
    }

    /// Client-observed end-to-end latency of the operation.
    pub fn end_to_end(&self) -> SimDuration {
        self.root_span().duration()
    }

    /// All spans of one phase.
    pub fn spans_of(&self, phase: SpanPhase) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Does `label` appear on any span?
    pub fn has_label(&self, label: &str) -> bool {
        self.spans.iter().any(|s| s.label == label)
    }

    /// Every non-root span's parent resolves to a span of this trace —
    /// the tree is connected, nothing was orphaned.
    pub fn is_connected(&self) -> bool {
        self.spans.iter().all(|s| match s.parent {
            None => s.id == self.root,
            Some(p) => self.spans.iter().any(|q| q.id == p),
        })
    }
}

struct OpenTrace {
    root: SpanId,
    spans: Vec<Span>,
}

/// The per-simulation span sink: open traces accumulate spans; on
/// completion a trace is frozen into a bounded ring of
/// [`CompletedTrace`]s (the flight recorder), evicting the oldest.
///
/// Recording is infallible and silent: spans for traces that are not
/// open (already completed, or never begun — e.g. a retransmission
/// landing after its operation finished) are dropped, never an error.
pub struct TraceLog {
    next_span: u64,
    open: BTreeMap<TraceId, OpenTrace>,
    completed: VecDeque<CompletedTrace>,
    pending_complete: Vec<(TraceId, SimTime)>,
    capacity: usize,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl TraceLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A log whose flight recorder retains at most `capacity` completed
    /// traces.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            next_span: 0,
            open: BTreeMap::new(),
            completed: VecDeque::new(),
            pending_complete: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Allocate the next span id (deterministic counter).
    pub fn alloc(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId(self.next_span)
    }

    /// Open a trace with its root `Op` span starting at `at`. The root
    /// span's end stays `at` until [`TraceLog::complete`] stamps it.
    pub fn begin(
        &mut self,
        trace: TraceId,
        node: NodeId,
        at: SimTime,
        label: &'static str,
    ) -> SpanId {
        let root = self.alloc();
        self.open.insert(
            trace,
            OpenTrace {
                root,
                spans: vec![Span {
                    trace,
                    id: root,
                    parent: None,
                    phase: SpanPhase::Op,
                    node,
                    start: at,
                    end: at,
                    label,
                }],
            },
        );
        root
    }

    /// Is `trace` currently open?
    pub fn is_open(&self, trace: TraceId) -> bool {
        self.open.contains_key(&trace)
    }

    /// Record a fully-formed span into its (open) trace.
    pub fn record(&mut self, span: Span) {
        if let Some(open) = self.open.get_mut(&span.trace) {
            open.spans.push(span);
        }
    }

    /// Allocate and record a span of `[start, end]` under `tc`'s span.
    /// Returns the new span's id if the trace was open.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        tc: TraceContext,
        phase: SpanPhase,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        label: &'static str,
    ) -> Option<SpanId> {
        if !self.open.contains_key(&tc.trace) {
            return None;
        }
        let id = self.alloc();
        self.record(Span {
            trace: tc.trace,
            id,
            parent: Some(tc.span),
            phase,
            node,
            start,
            end,
            label,
        });
        Some(id)
    }

    /// Record a zero-duration annotation span (protocol milestones:
    /// `"rejected"`, `"demoted"`, `"retry"`, …).
    pub fn marker(
        &mut self,
        tc: TraceContext,
        phase: SpanPhase,
        node: NodeId,
        at: SimTime,
        label: &'static str,
    ) {
        self.span(tc, phase, node, at, at, label);
    }

    /// Close `trace`: stamp the root span's end, freeze the span list
    /// into the flight recorder (evicting the oldest past capacity).
    /// No-op for traces that are not open.
    pub fn complete(&mut self, trace: TraceId, end: SimTime) {
        let Some(mut open) = self.open.remove(&trace) else {
            return;
        };
        let root = open.root;
        if let Some(span) = open.spans.iter_mut().find(|s| s.id == root) {
            span.end = end;
        }
        self.completed.push_back(CompletedTrace {
            trace,
            root,
            spans: open.spans,
        });
        while self.completed.len() > self.capacity {
            self.completed.pop_front();
        }
    }

    /// Queue a completion to be applied by the next
    /// [`TraceLog::flush_completions`]. Actor handlers use this
    /// (via the simulator's context) instead of [`TraceLog::complete`]
    /// so the span covering the completing handler itself — recorded by
    /// the simulator *after* the handler returns — still lands inside
    /// the trace.
    pub fn defer_complete(&mut self, trace: TraceId, end: SimTime) {
        self.pending_complete.push((trace, end));
    }

    /// Apply every queued [`TraceLog::defer_complete`].
    pub fn flush_completions(&mut self) {
        let drained = std::mem::take(&mut self.pending_complete);
        for (trace, end) in drained {
            self.complete(trace, end);
        }
    }

    /// The flight recorder: completed traces, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedTrace> {
        self.completed.iter()
    }

    /// The most recently completed trace, if any.
    pub fn last_completed(&self) -> Option<&CompletedTrace> {
        self.completed.back()
    }

    /// The most recently completed trace minted by `client`.
    pub fn last_completed_for(&self, client: u32) -> Option<&CompletedTrace> {
        self.completed
            .iter()
            .rev()
            .find(|t| t.trace.client() == client)
    }

    /// Completed traces retained.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Traces still open (operations in flight).
    pub fn open_len(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transedge_common::ClientId;

    fn client(i: u32) -> NodeId {
        NodeId::Client(ClientId(i))
    }

    #[test]
    fn trace_id_round_trips_client_and_op() {
        let t = TraceId::for_op(7, 42);
        assert_eq!(t.client(), 7);
        assert_eq!(t.op(), 42);
        assert_eq!(t.to_string(), "trace:7/42");
    }

    #[test]
    fn begin_record_complete_lands_in_recorder() {
        let mut log = TraceLog::new();
        let t = TraceId::for_op(0, 0);
        let root = log.begin(t, client(0), SimTime(10), "rot");
        assert!(log.is_open(t));
        let tc = TraceContext {
            trace: t,
            span: root,
        };
        let wire = log
            .span(
                tc,
                SpanPhase::Wire,
                client(0),
                SimTime(10),
                SimTime(30),
                "read-point",
            )
            .expect("trace open");
        assert_ne!(wire, root);
        log.complete(t, SimTime(90));
        assert!(!log.is_open(t));
        let done = log.last_completed().expect("one completed trace");
        assert_eq!(done.trace, t);
        assert_eq!(done.end_to_end(), SimDuration::from_micros(80));
        assert_eq!(done.spans.len(), 2);
        assert!(done.is_connected());
    }

    #[test]
    fn spans_for_unknown_traces_are_dropped() {
        let mut log = TraceLog::new();
        let t = TraceId::for_op(1, 1);
        let tc = TraceContext {
            trace: t,
            span: SpanId(99),
        };
        assert!(log
            .span(tc, SpanPhase::Wire, client(1), SimTime(0), SimTime(1), "x")
            .is_none());
        log.complete(t, SimTime(5));
        assert_eq!(log.completed_len(), 0);
    }

    #[test]
    fn flight_recorder_ring_is_bounded() {
        let mut log = TraceLog::with_capacity(2);
        for op in 0..5u32 {
            let t = TraceId::for_op(0, op);
            log.begin(t, client(0), SimTime(u64::from(op)), "rot");
            log.complete(t, SimTime(u64::from(op) + 1));
        }
        assert_eq!(log.completed_len(), 2);
        let kept: Vec<u32> = log.completed().map(|t| t.trace.op()).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted first");
        assert_eq!(log.last_completed_for(0).unwrap().trace.op(), 4);
    }

    #[test]
    fn orphaned_parent_breaks_connectedness() {
        let mut log = TraceLog::new();
        let t = TraceId::for_op(0, 0);
        log.begin(t, client(0), SimTime(0), "rot");
        log.record(Span {
            trace: t,
            id: SpanId(500),
            parent: Some(SpanId(400)), // never recorded
            phase: SpanPhase::Serve,
            node: client(0),
            start: SimTime(1),
            end: SimTime(2),
            label: "stray",
        });
        log.complete(t, SimTime(3));
        assert!(!log.last_completed().unwrap().is_connected());
    }
}
