//! Property tests of the certified delta stream's verifier boundary:
//! every way an untrusted relay could doctor a commit feed — splicing
//! out a delta, replaying one, reordering the chain, editing a changed
//! key set, attaching a feed whose deltas touch the queried keys, or
//! forging the certificate — is rejected by `verify_feed` /
//! `verify_delta` with a typed, *cryptographic* rejection. The honest
//! chain always verifies.

use proptest::prelude::*;
use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::{Digest, KeyStore, Sha256};
use transedge_edge::{
    changed_keys_digest, BatchCommitment, CertifiedDelta, ReadRejection, ReadVerifier, VerifyParams,
};

/// A minimal commitment whose certified digest folds in the delta
/// digest, mirroring `transedge-core`'s `BatchHeader` — the property
/// the whole stream leans on: consensus signs the changed-key set.
#[derive(Clone, Debug)]
struct FeedHeader {
    cluster: ClusterId,
    num: BatchNum,
    root: Digest,
    lce: Epoch,
    delta: Digest,
    timestamp: SimTime,
}

impl BatchCommitment for FeedHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }
    fn batch(&self) -> BatchNum {
        self.num
    }
    fn merkle_root(&self) -> &Digest {
        &self.root
    }
    fn lce(&self) -> Epoch {
        self.lce
    }
    fn timestamp(&self) -> SimTime {
        self.timestamp
    }
    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/feed-header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(self.delta.as_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
    fn delta_digest(&self) -> Digest {
        self.delta
    }
}

/// A cluster that can mint honestly certified deltas.
struct Publisher {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: std::collections::HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
}

impl Publisher {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[7u8; 32]);
        Publisher {
            topo,
            keys,
            secrets,
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: 8,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }

    /// Certify one batch's delta: sorted unique `changed` keys, digest
    /// folded into the certified header, `f+1` replica signatures.
    fn delta(&self, num: u64, changed: Vec<Key>) -> CertifiedDelta<FeedHeader> {
        let header = FeedHeader {
            cluster: ClusterId(0),
            num: BatchNum(num),
            root: Digest([0u8; 32]),
            lce: Epoch(num as i64),
            delta: changed_keys_digest(&changed),
            timestamp: SimTime(1_000 * num),
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), BatchNum(num), &digest);
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(self.topo.certificate_quorum())
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        CertifiedDelta {
            commitment: header,
            cert: Certificate {
                cluster: ClusterId(0),
                slot: BatchNum(num),
                digest,
                sigs,
            },
            changed,
        }
    }

    /// An honest feed: batches `served+1 ..= served+n`, each changing a
    /// distinct set of keys drawn from `key_sets` (none of which may
    /// contain a queried key — the caller controls that).
    fn feed(&self, served: u64, key_sets: &[Vec<u32>]) -> Vec<CertifiedDelta<FeedHeader>> {
        key_sets
            .iter()
            .enumerate()
            .map(|(i, set)| {
                let mut ks: Vec<Key> = set.iter().map(|k| Key::from_u32(*k)).collect();
                ks.sort();
                ks.dedup();
                self.delta(served + 1 + i as u64, ks)
            })
            .collect()
    }
}

/// Changed-key sets that never touch the queried keys (queried keys
/// live below 100; changed keys start at 100).
fn changed_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(100u32..10_000, 0..6), 2..8)
}

fn queried() -> Vec<Key> {
    vec![Key::from_u32(1), Key::from_u32(2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The honest chain always verifies, and returns the head batch.
    #[test]
    fn honest_feed_verifies_to_head(sets in changed_sets(), served in 0u64..50) {
        let p = Publisher::new();
        let feed = p.feed(served, &sets);
        let head = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect("honest feed must verify");
        prop_assert_eq!(head, BatchNum(served + sets.len() as u64));
    }

    /// Omitting any non-final delta leaves a gap in the chain —
    /// `FeedSpliced`. (Truncating the *tail* is allowed: it only
    /// weakens the freshness claim, never hides a change before the
    /// claimed head.)
    #[test]
    fn omitted_delta_is_spliced(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
    ) {
        let p = Publisher::new();
        let mut feed = p.feed(served, &sets);
        let drop_at = pick.index(feed.len() - 1); // never the last
        feed.remove(drop_at);
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("a gapped feed must not verify");
        prop_assert!(matches!(err, ReadRejection::FeedSpliced { .. }), "{:?}", err);
    }

    /// Replaying (duplicating) any delta breaks contiguity at the next
    /// position — `FeedSpliced`.
    #[test]
    fn replayed_delta_is_spliced(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
    ) {
        let p = Publisher::new();
        let mut feed = p.feed(served, &sets);
        let dup_at = pick.index(feed.len());
        feed.insert(dup_at, feed[dup_at].clone());
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("a replayed delta must not verify");
        prop_assert!(matches!(err, ReadRejection::FeedSpliced { .. }), "{:?}", err);
    }

    /// Swapping two adjacent deltas (reordering) breaks contiguity.
    #[test]
    fn reordered_feed_is_spliced(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
    ) {
        let p = Publisher::new();
        let mut feed = p.feed(served, &sets);
        let at = pick.index(feed.len() - 1);
        feed.swap(at, at + 1);
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("a reordered feed must not verify");
        prop_assert!(matches!(err, ReadRejection::FeedSpliced { .. }), "{:?}", err);
    }

    /// Editing any delta's changed-key list — adding, dropping, or
    /// substituting a key — breaks the recomputation against the
    /// certified delta digest: `BadDelta`, whatever the edit.
    #[test]
    fn tampered_changed_set_is_bad_delta(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
        add in any::<bool>(),
    ) {
        let p = Publisher::new();
        let mut feed = p.feed(served, &sets);
        let at = pick.index(feed.len());
        if add {
            // Key 50 sorts below every changed key (they start at 100)
            // and is not queried, so ordering stays canonical — only
            // the digest betrays the edit.
            feed[at].changed.insert(0, Key::from_u32(50));
        } else if feed[at].changed.is_empty() {
            feed[at].changed.push(Key::from_u32(50));
        } else {
            feed[at].changed.remove(0);
        }
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("an edited changed set must not verify");
        prop_assert_eq!(err, ReadRejection::BadDelta);
    }

    /// A feed whose (honestly certified!) deltas touch a queried key
    /// contradicts the freshness claim itself — the served value is
    /// provably *not* current — and is rejected as `BadDelta`.
    #[test]
    fn delta_touching_queried_key_is_rejected(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
    ) {
        let p = Publisher::new();
        let mut sets = sets;
        let at = pick.index(sets.len());
        sets[at].push(1); // queried key
        let feed = p.feed(served, &sets);
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("a feed touching a queried key must not verify");
        prop_assert_eq!(err, ReadRejection::BadDelta);
    }

    /// A certificate below quorum — or one transplanted from a
    /// different batch — fails the signature check: `BadCertificate`.
    #[test]
    fn forged_certificate_is_rejected(
        sets in changed_sets(),
        served in 0u64..50,
        pick in any::<prop::sample::Index>(),
        truncate in any::<bool>(),
    ) {
        let p = Publisher::new();
        let mut feed = p.feed(served, &sets);
        let at = pick.index(feed.len());
        if truncate {
            // Below f+1 distinct signatures.
            feed[at].cert.sigs.clear();
        } else {
            // Certificate for the right digest, wrong slot.
            feed[at].cert.slot = BatchNum(feed[at].cert.slot.0 + 1_000);
        }
        let err = p.verifier()
            .verify_feed(&p.keys, ClusterId(0), BatchNum(served), &queried(), &feed)
            .expect_err("a forged certificate must not verify");
        prop_assert_eq!(err, ReadRejection::BadCertificate);
    }
}
