//! Adversarial property tests for the persistence plane: disk is
//! untrusted input. Honest spilled objects re-admit through the
//! client-grade verifier; a forged value, a flipped proof byte, a
//! forged certificate signature, or a splice of payloads across
//! content addresses is rejected at hydration — either by the content
//! address (self-check gate) or by the verifier (proof gate) — and an
//! object that merely aged past the freshness window is classified as
//! stale, not as tampering.

use proptest::prelude::*;
use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{Digest, KeyStore, MerkleProof, ScanRange, Sha256, VersionedMerkleTree};
use transedge_edge::persist::null_digest;
use transedge_edge::{
    is_stale_only, readmit, BatchCommitment, HydrateReject, MultiProofBundle, ProofBundle,
    ProvenRead, ReadPipeline, ReadRejection, ReadVerifier, ScanBundle, ScanProof, SnapshotObject,
    SnapshotSource, SnapshotStore, VerifyParams,
};
use transedge_storage::VersionedStore;

const DEPTH: u32 = 8;
/// "Now" at readmission: shortly after the batch timestamps.
const NOW: SimTime = SimTime(2_500);
/// A restart long after the outage: honest objects have aged out.
const MUCH_LATER: SimTime = SimTime(40_000_000);

/// A minimal certified batch header for tests (the commitment shape
/// `transedge-core` provides in production).
#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: std::collections::HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> transedge_crypto::RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[9u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    fn commit(&mut self, writes: &[(u32, String)], timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(v.as_str());
            self.store.write(key.clone(), value.clone(), num);
            updates.push((key, value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce: Epoch::NONE,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    fn point_bundle(&self, keys: &[Key], at: BatchNum) -> ProofBundle<TestHeader> {
        ProofBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            reads: keys
                .iter()
                .map(|k| ProvenRead {
                    key: k.clone(),
                    value: self.value_at(k, at),
                    proof: self.prove_at(k, at),
                })
                .collect(),
        }
    }

    fn scan_bundle(&self, range: ScanRange, at: BatchNum) -> ScanBundle<TestHeader> {
        ScanBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            scan: ScanProof {
                range,
                rows: self.rows_at(&range, at),
                proof: self.prove_range(&range, at),
            },
        }
    }

    fn multi_bundle(
        &self,
        pipeline: &mut ReadPipeline,
        keys: &[Key],
        at: BatchNum,
    ) -> MultiProofBundle<TestHeader> {
        MultiProofBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            body: pipeline.serve_multi(self, keys, at),
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }
}

/// Two batches over random keys; batch 1 always overwrites something
/// so the roots differ.
fn world(key_tags: &[(u16, u8)]) -> Partition {
    let mut p = Partition::new();
    let batch0: Vec<(u32, String)> = key_tags
        .iter()
        .map(|(k, v)| (*k as u32 % 512, format!("a{v}")))
        .collect();
    p.commit(&batch0, SimTime(1_000));
    p.commit(
        &[(key_tags[0].0 as u32 % 512, "overwrite".to_string())],
        SimTime(2_000),
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every shape an edge persists (point bundle, scan window,
    /// multiproof body): the honest object re-admits; any on-disk
    /// corruption is rejected by one of the two gates and never
    /// reaches a cache.
    #[test]
    fn disk_corruption_never_readmits(
        key_tags in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
        forged_tag in any::<u8>(),
    ) {
        let p = world(&key_tags);
        let mut requested: Vec<Key> = key_tags
            .iter()
            .map(|(k, _)| Key::from_u32(*k as u32 % 512))
            .collect();
        requested.sort();
        requested.dedup();

        let mut pipeline = ReadPipeline::new(1024);
        let mut store: SnapshotStore<TestHeader> = SnapshotStore::new(16);
        let d_point =
            store.spill(SnapshotObject::Point(p.point_bundle(&requested, BatchNum(1))));
        let d_scan = store.spill(SnapshotObject::Scan(
            p.scan_bundle(ScanRange::new(0, 255), BatchNum(1)),
        ));
        let d_multi = store.spill(SnapshotObject::Multi(
            p.multi_bundle(&mut pipeline, &requested, BatchNum(1)),
        ));
        let verifier = p.verifier();

        // Honest disk: every stored object re-admits under its address.
        for (_, digest) in store.hydration_set() {
            let object = store.get(&digest).unwrap();
            prop_assert!(readmit(&verifier, &p.keys, &digest, object, NOW).is_ok());
        }

        // An honest object under the wrong address is still refused:
        // the address is part of the trust chain, not a lookup hint.
        prop_assert_eq!(
            readmit(&verifier, &p.keys, &null_digest(), store.get(&d_point).unwrap(), NOW)
                .unwrap_err(),
            HydrateReject::DigestMismatch
        );

        // 1. Value forgery on a point read: the content address breaks
        // (the self-check gate fires before any proof work).
        {
            let mut s = store.clone();
            let forged = Value::from(format!("forged-{forged_tag}").as_str());
            prop_assert!(s.tamper_with(&d_point, |object| {
                if let SnapshotObject::Point(b) = object {
                    b.reads[0].value = Some(forged);
                }
            }));
            prop_assert_eq!(
                readmit(&verifier, &p.keys, &d_point, s.get(&d_point).unwrap(), NOW)
                    .unwrap_err(),
                HydrateReject::DigestMismatch
            );
        }

        // 2. Proof tamper on a point read: proof bytes sit *outside*
        // the content address, so the self-check passes — the verifier
        // gate must catch it.
        {
            let mut s = store.clone();
            prop_assert!(s.tamper_with(&d_point, |object| {
                if let SnapshotObject::Point(b) = object {
                    if let Some(sibling) = b.reads[0].proof.siblings.first_mut() {
                        *sibling = Digest([0xEE; 32]);
                    } else if let Some(entry) = b.reads[0].proof.bucket.first_mut() {
                        entry.value_hash = Digest([0xEE; 32]);
                    }
                }
            }));
            let err = readmit(&verifier, &p.keys, &d_point, s.get(&d_point).unwrap(), NOW)
                .unwrap_err();
            prop_assert!(matches!(err, HydrateReject::Verification(_)), "{err:?}");
            prop_assert!(!is_stale_only(&err));
        }

        // 3. Row forgery inside a scan window: content address breaks.
        {
            let mut s = store.clone();
            prop_assert!(s.tamper_with(&d_scan, |object| {
                if let SnapshotObject::Scan(b) = object {
                    if let Some(row) = b.scan.rows.first_mut() {
                        row.1 = Value::from("forged");
                    } else {
                        b.scan.range.last = b.scan.range.last.wrapping_add(1);
                    }
                }
            }));
            prop_assert_eq!(
                readmit(&verifier, &p.keys, &d_scan, s.get(&d_scan).unwrap(), NOW)
                    .unwrap_err(),
                HydrateReject::DigestMismatch
            );
        }

        // 4. Certificate signature forgery on the multiproof: the
        // signature bytes are outside the content address (only the
        // signed digest and the count are folded), so this must be
        // caught by the verifier's certificate check.
        {
            let mut s = store.clone();
            let replica = p.topo.replicas_of(ClusterId(0)).next().unwrap();
            let forged_sig = p.secrets[&replica].sign(b"not the accept statement");
            prop_assert!(s.tamper_with(&d_multi, |object| {
                if let SnapshotObject::Multi(b) = object {
                    b.cert.sigs[0].1 = forged_sig;
                }
            }));
            let err = readmit(&verifier, &p.keys, &d_multi, s.get(&d_multi).unwrap(), NOW)
                .unwrap_err();
            prop_assert!(matches!(err, HydrateReject::Verification(_)), "{err:?}");
            prop_assert!(!is_stale_only(&err));
        }

        // 5. Splice: swapping the payloads under two addresses (a
        // corrupted directory block) fails both self-checks.
        {
            let mut s = store.clone();
            prop_assert!(s.splice(&d_point, &d_scan));
            for d in [&d_point, &d_scan] {
                prop_assert_eq!(
                    readmit(&verifier, &p.keys, d, s.get(d).unwrap(), NOW).unwrap_err(),
                    HydrateReject::DigestMismatch
                );
            }
        }

        // 6. Honest aging: after a long outage the same honest object
        // is rejected as stale — and classified as such, not as
        // tampering (callers drop it quietly instead of alarming).
        {
            let err = readmit(
                &verifier,
                &p.keys,
                &d_point,
                store.get(&d_point).unwrap(),
                MUCH_LATER,
            )
            .unwrap_err();
            prop_assert_eq!(
                &err,
                &HydrateReject::Verification(ReadRejection::StaleTimestamp)
            );
            prop_assert!(is_stale_only(&err));
        }
    }
}
