//! Property tests for `ReadVerifier::verify_scan`: across random
//! partition contents and random windows, *no* single-row omission,
//! boundary truncation, or cross-batch splice of an otherwise-valid
//! range proof survives verification — and the honest scan always
//! verifies to exactly the committed rows of the window.

use std::collections::HashMap;

use proptest::prelude::*;
use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{
    sha256, Digest, KeyStore, MerkleProof, RangeProof, ScanRange, Sha256, VersionedMerkleTree,
};
use transedge_edge::{
    scan_snapshot, BatchCommitment, ReadRejection, ReadVerifier, ScanBundle, SnapshotSource,
    VerifyParams,
};
use transedge_storage::VersionedStore;

/// Shallow tree: 64 buckets → dense windows and bucket collisions.
const DEPTH: u32 = 6;

#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/scan-header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[7u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    fn commit(&mut self, writes: &[(u32, String)], timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(v.as_str());
            self.store.write(key.clone(), value.clone(), num);
            updates.push((key, value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce: Epoch::NONE,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    fn scan_bundle(&self, range: &ScanRange, at: BatchNum) -> ScanBundle<TestHeader> {
        ScanBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            scan: scan_snapshot(self, range, at),
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }

    fn verify(
        &self,
        bundle: &ScanBundle<TestHeader>,
        requested: &ScanRange,
    ) -> Result<Vec<(Key, Value)>, ReadRejection> {
        self.verifier().verify_scan(
            &self.keys,
            ClusterId(0),
            bundle,
            requested,
            Epoch::NONE,
            SimTime(2_500),
        )
    }
}

/// Two batches over random keys; batch 1 always overwrites something so
/// the roots differ (the splice attack needs a second, different root).
fn world(key_tags: &[(u16, u8)]) -> Partition {
    let mut p = Partition::new();
    let batch0: Vec<(u32, String)> = key_tags
        .iter()
        .map(|(k, v)| (*k as u32 % 512, format!("a{v}")))
        .collect();
    p.commit(&batch0, SimTime(1_000));
    let batch1: Vec<(u32, String)> = vec![(key_tags[0].0 as u32 % 512, "overwrite".to_string())];
    p.commit(&batch1, SimTime(2_000));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Honest scans verify to exactly the committed window; every
    /// single-row omission (client-visible rows *and* proof entries),
    /// every boundary truncation, and the cross-batch splice are
    /// rejected with the right typed error.
    #[test]
    fn scan_forgeries_never_survive(
        key_tags in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..32),
        first in 0u64..64,
        width in 1u64..24,
    ) {
        let p = world(&key_tags);
        let last = (first + width - 1).min((1 << DEPTH) - 1);
        let range = ScanRange::new(first, last);
        let honest = p.scan_bundle(&range, BatchNum(1));

        // Honest: verifies, and the rows are exactly the committed
        // content of the window, in tree order.
        let rows = p.verify(&honest, &range).expect("honest scan verifies");
        let mut expected: Vec<(Key, Value)> = p
            .store
            .range_at(range.digest_bounds(DEPTH), BatchNum(1))
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        expected.sort_by_key(|(k, _)| sha256(k.as_bytes()));
        prop_assert_eq!(&rows, &expected);

        // 1a. Omit any single returned row → IncompleteScan. Every
        // surviving row still matches the proof individually; only the
        // completeness count catches the hole.
        for i in 0..honest.scan.rows.len() {
            let mut b = honest.clone();
            b.scan.rows.remove(i);
            prop_assert!(matches!(
                p.verify(&b, &range),
                Err(ReadRejection::IncompleteScan { .. })
            ), "omitting row {i} must be rejected");
        }

        // 1b. Omit a single *proof* leaf entry as well (hiding the row
        // and its commitment together) → the root no longer folds.
        for bi in 0..honest.scan.proof.occupied.len() {
            for ei in 0..honest.scan.proof.occupied[bi].1.len() {
                let mut b = honest.clone();
                let removed = b.scan.proof.occupied[bi].1.remove(ei);
                if b.scan.proof.occupied[bi].1.is_empty() {
                    b.scan.proof.occupied.remove(bi);
                }
                b.scan
                    .rows
                    .retain(|(k, _)| sha256(k.as_bytes()) != removed.key_hash);
                prop_assert!(matches!(
                    p.verify(&b, &range),
                    Err(ReadRejection::BadRangeProof)
                ), "omitting proof entry must break the root");
            }
        }

        // 2. Boundary truncation: a proof for a narrower window...
        if range.width() > 1 {
            let narrow = ScanRange::new(range.first + 1, range.last);
            let truncated = p.scan_bundle(&narrow, BatchNum(1));
            // ...honestly labelled does not cover the request;
            prop_assert!(matches!(
                p.verify(&truncated, &range),
                Err(ReadRejection::ScanRangeNotCovered { .. })
            ));
            // ...and relabelled as the full window, its siblings no
            // longer fold to the certified root.
            let mut relabelled = truncated.clone();
            relabelled.scan.range = range;
            prop_assert!(p.verify(&relabelled, &range).is_err());
        }

        // 3. Cross-batch splice: batch 0's (internally consistent)
        // window and proof under batch 1's certified commitment. The
        // roots differ, so the splice folds to the wrong root.
        let stale = p.scan_bundle(&range, BatchNum(0));
        let mut spliced = honest.clone();
        spliced.scan = stale.scan;
        prop_assert!(matches!(
            p.verify(&spliced, &range),
            Err(ReadRejection::BadRangeProof)
        ));
    }
}

/// The remaining typed rejections, pinned deterministically.
#[test]
fn scan_rejection_classes_are_typed() {
    let p = world(&[(1, 1), (2, 2), (3, 3), (4, 4), (130, 5)]);
    let range = ScanRange::new(0, (1 << DEPTH) - 1);
    let honest = p.scan_bundle(&range, BatchNum(1));
    assert!(!honest.scan.rows.is_empty());

    // Tampered row value: the row no longer hashes to its entry.
    let mut b = honest.clone();
    b.scan.rows[0].1 = Value::from("forged");
    let key = b.scan.rows[0].0.clone();
    assert_eq!(
        p.verify(&b, &range),
        Err(ReadRejection::ScanRowMismatch(key))
    );

    // Injected phantom row: count exceeds the proven window.
    let mut b = honest.clone();
    b.scan
        .rows
        .push((Key::from_u32(9_999), Value::from("phantom")));
    assert!(matches!(
        p.verify(&b, &range),
        Err(ReadRejection::IncompleteScan { .. })
    ));

    // Reordered rows: tree order is part of the match.
    if honest.scan.rows.len() > 1 {
        let mut b = honest.clone();
        b.scan.rows.reverse();
        assert!(matches!(
            p.verify(&b, &range),
            Err(ReadRejection::ScanRowMismatch(_))
        ));
    }

    // Forged root with the real certificate.
    let mut b = honest.clone();
    b.commitment.merkle_root = Digest([0xDE; 32]);
    assert_eq!(p.verify(&b, &range), Err(ReadRejection::BadCertificate));

    // Stale timestamp outside the freshness window.
    let late = p.verifier().verify_scan(
        &p.keys,
        ClusterId(0),
        &honest,
        &range,
        Epoch::NONE,
        SimTime(SimDuration::from_secs(40).as_micros()),
    );
    assert_eq!(late, Err(ReadRejection::StaleTimestamp));

    // Wrong partition.
    let wrong = p.verifier().verify_scan(
        &p.keys,
        ClusterId(1),
        &honest,
        &range,
        Epoch::NONE,
        SimTime(2_500),
    );
    assert!(matches!(wrong, Err(ReadRejection::WrongCluster { .. })));
}
