//! End-to-end tests of the edge read subsystem against a real
//! partition state: honest responses verify; every class of forgery an
//! untrusted edge node could attempt is rejected.

use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{Digest, KeyStore, MerkleProof, Sha256, VersionedMerkleTree};
use transedge_edge::{
    BatchCommitment, ProofBundle, ReadPipeline, ReadRejection, ReadVerifier, ReplayCache,
    SnapshotSource, VerifyParams,
};
use transedge_storage::VersionedStore;

const DEPTH: u32 = 8;

/// A minimal certified batch header for tests (the commitment shape
/// `transedge-core` provides in production).
#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

/// One partition's worth of server state: store, tree, keys, and the
/// per-batch certified headers.
struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: std::collections::HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[9u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    /// Commit a batch of writes and certify the resulting header.
    fn commit(&mut self, writes: &[(u32, &str)], lce: Epoch, timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(*v);
            self.store.write(key.clone(), value.clone(), num);
            updates.push((Key::from_u32(*k), value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    fn bundle(
        &self,
        pipeline: &mut ReadPipeline,
        keys: &[Key],
        at: BatchNum,
    ) -> ProofBundle<TestHeader> {
        ProofBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            reads: pipeline.serve(self, keys, at),
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }
}

fn two_batch_partition() -> Partition {
    let mut p = Partition::new();
    p.commit(&[(1, "alpha"), (2, "beta")], Epoch::NONE, SimTime(1_000));
    p.commit(&[(1, "alpha-v2")], Epoch(0), SimTime(2_000));
    p
}

fn request_keys() -> Vec<Key> {
    vec![Key::from_u32(1), Key::from_u32(2), Key::from_u32(7)]
}

#[test]
fn honest_reads_verify_cached_and_uncached() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // Cold (uncached) and warm (cached) bundles must both verify and
    // agree byte for byte.
    for round in 0..2 {
        let bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
        let values = verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &bundle,
                &keys,
                Epoch::NONE,
                SimTime(2_500),
            )
            .unwrap_or_else(|e| panic!("round {round} rejected: {e:?}"));
        assert_eq!(values[0], (Key::from_u32(1), Some(Value::from("alpha-v2"))));
        assert_eq!(values[1], (Key::from_u32(2), Some(Value::from("beta"))));
        assert_eq!(values[2], (Key::from_u32(7), None));
    }
    assert!(
        pipeline.stats().hits >= 3,
        "second round must hit the cache"
    );
    // Historical snapshot still serves the old value, also verified.
    let bundle0 = p.bundle(&mut pipeline, &keys, BatchNum(0));
    let values0 = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle0,
            &keys,
            Epoch::NONE,
            SimTime(1_500),
        )
        .expect("historical snapshot verifies");
    assert_eq!(values0[0].1, Some(Value::from("alpha")));
}

#[test]
fn tampered_value_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    bundle.reads[0].value = Some(Value::from("forged"));
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::ValueMismatch(Key::from_u32(1)));
}

#[test]
fn forged_proof_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    // Corrupt one sibling digest in the first key's proof.
    bundle.reads[0].proof.siblings[0] = Digest([0xEE; 32]);
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::BadProof(Key::from_u32(1)));
}

#[test]
fn phantom_value_on_absent_key_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    // Key 7 is proven absent; attach a value anyway.
    bundle.reads[2].value = Some(Value::from("conjured"));
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::PhantomValue(Key::from_u32(7)));
}

#[test]
fn stale_root_is_rejected() {
    // The "stale root" attack: serve batch-0 state (old root, old
    // values) against the batch-1 commitment, or lie about the root.
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // (a) Old proofs under the new certified header: proof fails.
    let mut mixed = p.bundle(&mut pipeline, &keys, BatchNum(0));
    mixed.commitment = p.headers[1].clone();
    mixed.cert = p.certs[1].clone();
    let err = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &mixed,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            ReadRejection::BadProof(_) | ReadRejection::ValueMismatch(_)
        ),
        "old state under new commitment must fail proof checks, got {err:?}"
    );
    // (b) Header rewritten to the old root but batch-1 certificate
    // kept: the certificate no longer covers the digest.
    let mut rerooted = p.bundle(&mut pipeline, &keys, BatchNum(1));
    rerooted.commitment.merkle_root = p.headers[0].merkle_root;
    rerooted.cert = p.certs[1].clone();
    let err = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &rerooted,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::BadCertificate);
    // (c) Honest old batch served against a round-2 dependency floor it
    // cannot satisfy: stale snapshot.
    let old = p.bundle(&mut pipeline, &keys, BatchNum(0));
    let err = verifier
        .verify_bundle(&p.keys, ClusterId(0), &old, &keys, Epoch(0), SimTime(1_500))
        .unwrap_err();
    assert_eq!(
        err,
        ReadRejection::StaleSnapshot {
            required: Epoch(0),
            lce: Epoch::NONE
        }
    );
}

#[test]
fn certificate_forgeries_are_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // Dropped below quorum.
    let mut thin = p.bundle(&mut pipeline, &keys, BatchNum(1));
    thin.cert.sigs.truncate(p.topo.certificate_quorum() - 1);
    assert_eq!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &thin,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::BadCertificate
    );
    // Certificate for a different slot.
    let mut wrong_slot = p.bundle(&mut pipeline, &keys, BatchNum(1));
    wrong_slot.cert = p.certs[0].clone();
    assert_eq!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &wrong_slot,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::BadCertificate
    );
    // Response for the wrong partition.
    let mut wrong_cluster = p.bundle(&mut pipeline, &keys, BatchNum(1));
    wrong_cluster.commitment.cluster = ClusterId(3);
    assert!(matches!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &wrong_cluster,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::WrongCluster { .. }
    ));
}

#[test]
fn stale_timestamp_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    let too_late = SimTime(2_000 + SimDuration::from_secs(31).as_micros());
    assert_eq!(
        p.verifier()
            .verify_bundle(&p.keys, ClusterId(0), &bundle, &keys, Epoch::NONE, too_late)
            .unwrap_err(),
        ReadRejection::StaleTimestamp
    );
}

#[test]
fn missing_key_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    bundle.reads.remove(1);
    assert_eq!(
        p.verifier()
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &bundle,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::MissingKey(Key::from_u32(2))
    );
}

#[test]
fn replay_cache_round_trips_verified_bundles() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    // Nothing cached yet: the edge node must pass upstream.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime::ZERO).is_none());
    assert_eq!(replay.stats.passes, 1);
    // Absorb an upstream response, then replay it to a second client.
    let upstream = p.bundle(&mut pipeline, &keys, BatchNum(1));
    replay.admit(&upstream);
    let replayed = replay
        .replay(&keys, Epoch::NONE, SimTime::ZERO)
        .expect("cached replay");
    let values = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &replayed,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .expect("replayed bundle verifies");
    assert_eq!(values[0].1, Some(Value::from("alpha-v2")));
    assert_eq!(replay.stats.replayed, 1);
    // A dependency floor the cached batch cannot satisfy passes
    // upstream instead of serving stale state.
    assert!(replay.replay(&keys, Epoch(5), SimTime::ZERO).is_none());
    // A subset of the cached keys replays too.
    assert!(replay
        .replay(&keys[..1], Epoch::NONE, SimTime::ZERO)
        .is_some());
    // Unknown keys pass upstream.
    assert!(replay
        .replay(&[Key::from_u32(99)], Epoch::NONE, SimTime::ZERO)
        .is_none());
}

#[test]
fn replay_respects_freshness_floor_and_gc() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    // Only the newest commitment is retained (max_batches = 1).
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 1);
    let b0 = p.bundle(&mut pipeline, &keys, BatchNum(0));
    replay.admit(&b0);
    assert_eq!(replay.fragment_count(), keys.len());
    // Batch 1 (timestamp 2_000) evicts batch 0 and its fragments.
    let b1 = p.bundle(&mut pipeline, &keys, BatchNum(1));
    replay.admit(&b1);
    assert_eq!(replay.latest_batch(), Some(BatchNum(1)));
    assert_eq!(
        replay.fragment_count(),
        keys.len(),
        "fragments of the evicted batch 0 must be dropped"
    );
    // Fresh enough: replays.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime(1_500)).is_some());
    // Cached bundle older than the floor: pass upstream instead of
    // serving something the client would reject as stale.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime(2_001)).is_none());
}
