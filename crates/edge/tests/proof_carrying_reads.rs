//! End-to-end tests of the edge read subsystem against a real
//! partition state: honest responses verify; every class of forgery an
//! untrusted edge node could attempt is rejected.

use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{Digest, KeyStore, MerkleProof, ScanRange, Sha256, VersionedMerkleTree};
use transedge_edge::{
    Assembly, BatchCommitment, ProofBundle, ReadPipeline, ReadRejection, ReadVerifier, ReplayCache,
    SnapshotSource, VerifyParams,
};
use transedge_storage::VersionedStore;

const DEPTH: u32 = 8;

/// A minimal certified batch header for tests (the commitment shape
/// `transedge-core` provides in production).
#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

/// One partition's worth of server state: store, tree, keys, and the
/// per-batch certified headers.
struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: std::collections::HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> transedge_crypto::RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[9u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    /// Commit a batch of writes and certify the resulting header.
    fn commit(&mut self, writes: &[(u32, &str)], lce: Epoch, timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(*v);
            self.store.write(key.clone(), value.clone(), num);
            updates.push((Key::from_u32(*k), value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    fn bundle(
        &self,
        pipeline: &mut ReadPipeline,
        keys: &[Key],
        at: BatchNum,
    ) -> ProofBundle<TestHeader> {
        ProofBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            reads: pipeline.serve(self, keys, at),
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }
}

fn two_batch_partition() -> Partition {
    let mut p = Partition::new();
    p.commit(&[(1, "alpha"), (2, "beta")], Epoch::NONE, SimTime(1_000));
    p.commit(&[(1, "alpha-v2")], Epoch(0), SimTime(2_000));
    p
}

fn request_keys() -> Vec<Key> {
    vec![Key::from_u32(1), Key::from_u32(2), Key::from_u32(7)]
}

#[test]
fn honest_reads_verify_cached_and_uncached() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // Cold (uncached) and warm (cached) bundles must both verify and
    // agree byte for byte.
    for round in 0..2 {
        let bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
        let values = verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &bundle,
                &keys,
                Epoch::NONE,
                SimTime(2_500),
            )
            .unwrap_or_else(|e| panic!("round {round} rejected: {e:?}"));
        assert_eq!(values[0], (Key::from_u32(1), Some(Value::from("alpha-v2"))));
        assert_eq!(values[1], (Key::from_u32(2), Some(Value::from("beta"))));
        assert_eq!(values[2], (Key::from_u32(7), None));
    }
    assert!(
        pipeline.stats().hits >= 3,
        "second round must hit the cache"
    );
    // Historical snapshot still serves the old value, also verified.
    let bundle0 = p.bundle(&mut pipeline, &keys, BatchNum(0));
    let values0 = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle0,
            &keys,
            Epoch::NONE,
            SimTime(1_500),
        )
        .expect("historical snapshot verifies");
    assert_eq!(values0[0].1, Some(Value::from("alpha")));
}

#[test]
fn tampered_value_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    bundle.reads[0].value = Some(Value::from("forged"));
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::ValueMismatch(Key::from_u32(1)));
}

#[test]
fn forged_proof_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    // Corrupt one sibling digest in the first key's proof.
    bundle.reads[0].proof.siblings[0] = Digest([0xEE; 32]);
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::BadProof(Key::from_u32(1)));
}

#[test]
fn phantom_value_on_absent_key_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    // Key 7 is proven absent; attach a value anyway.
    bundle.reads[2].value = Some(Value::from("conjured"));
    let err = p
        .verifier()
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &bundle,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::PhantomValue(Key::from_u32(7)));
}

#[test]
fn stale_root_is_rejected() {
    // The "stale root" attack: serve batch-0 state (old root, old
    // values) against the batch-1 commitment, or lie about the root.
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // (a) Old proofs under the new certified header: proof fails.
    let mut mixed = p.bundle(&mut pipeline, &keys, BatchNum(0));
    mixed.commitment = p.headers[1].clone();
    mixed.cert = p.certs[1].clone();
    let err = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &mixed,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            ReadRejection::BadProof(_) | ReadRejection::ValueMismatch(_)
        ),
        "old state under new commitment must fail proof checks, got {err:?}"
    );
    // (b) Header rewritten to the old root but batch-1 certificate
    // kept: the certificate no longer covers the digest.
    let mut rerooted = p.bundle(&mut pipeline, &keys, BatchNum(1));
    rerooted.commitment.merkle_root = p.headers[0].merkle_root;
    rerooted.cert = p.certs[1].clone();
    let err = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &rerooted,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .unwrap_err();
    assert_eq!(err, ReadRejection::BadCertificate);
    // (c) Honest old batch served against a round-2 dependency floor it
    // cannot satisfy: stale snapshot.
    let old = p.bundle(&mut pipeline, &keys, BatchNum(0));
    let err = verifier
        .verify_bundle(&p.keys, ClusterId(0), &old, &keys, Epoch(0), SimTime(1_500))
        .unwrap_err();
    assert_eq!(
        err,
        ReadRejection::StaleSnapshot {
            required: Epoch(0),
            lce: Epoch::NONE
        }
    );
}

#[test]
fn certificate_forgeries_are_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    // Dropped below quorum.
    let mut thin = p.bundle(&mut pipeline, &keys, BatchNum(1));
    thin.cert.sigs.truncate(p.topo.certificate_quorum() - 1);
    assert_eq!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &thin,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::BadCertificate
    );
    // Certificate for a different slot.
    let mut wrong_slot = p.bundle(&mut pipeline, &keys, BatchNum(1));
    wrong_slot.cert = p.certs[0].clone();
    assert_eq!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &wrong_slot,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::BadCertificate
    );
    // Response for the wrong partition.
    let mut wrong_cluster = p.bundle(&mut pipeline, &keys, BatchNum(1));
    wrong_cluster.commitment.cluster = ClusterId(3);
    assert!(matches!(
        verifier
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &wrong_cluster,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::WrongCluster { .. }
    ));
}

#[test]
fn stale_timestamp_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    let too_late = SimTime(2_000 + SimDuration::from_secs(31).as_micros());
    assert_eq!(
        p.verifier()
            .verify_bundle(&p.keys, ClusterId(0), &bundle, &keys, Epoch::NONE, too_late)
            .unwrap_err(),
        ReadRejection::StaleTimestamp
    );
}

#[test]
fn missing_key_is_rejected() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let mut bundle = p.bundle(&mut pipeline, &keys, BatchNum(1));
    bundle.reads.remove(1);
    assert_eq!(
        p.verifier()
            .verify_bundle(
                &p.keys,
                ClusterId(0),
                &bundle,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::MissingKey(Key::from_u32(2))
    );
}

#[test]
fn replay_cache_round_trips_verified_bundles() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    let verifier = p.verifier();
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    // Nothing cached yet: the edge node must pass upstream.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime::ZERO).is_none());
    assert_eq!(replay.stats.passes, 1);
    // Absorb an upstream response, then replay it to a second client.
    let upstream = p.bundle(&mut pipeline, &keys, BatchNum(1));
    replay.admit(&upstream);
    let replayed = replay
        .replay(&keys, Epoch::NONE, SimTime::ZERO)
        .expect("cached replay");
    let values = verifier
        .verify_bundle(
            &p.keys,
            ClusterId(0),
            &replayed,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .expect("replayed bundle verifies");
    assert_eq!(values[0].1, Some(Value::from("alpha-v2")));
    assert_eq!(replay.stats.replayed, 1);
    // A dependency floor the cached batch cannot satisfy passes
    // upstream instead of serving stale state.
    assert!(replay.replay(&keys, Epoch(5), SimTime::ZERO).is_none());
    // A subset of the cached keys replays too.
    assert!(replay
        .replay(&keys[..1], Epoch::NONE, SimTime::ZERO)
        .is_some());
    // Unknown keys pass upstream.
    assert!(replay
        .replay(&[Key::from_u32(99)], Epoch::NONE, SimTime::ZERO)
        .is_none());
}

/// Partial assembly: a request only partially covered by the cache is
/// split into cached fragments at an anchor batch plus the keys to
/// fetch upstream pinned at that batch; the client verifies each
/// section against its own certified root.
#[test]
fn partial_assembly_combines_cached_and_upstream_sections() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let verifier = p.verifier();
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    // The edge has only keys 1 and 2 cached (at batch 1).
    let cached_keys = vec![Key::from_u32(1), Key::from_u32(2)];
    replay.admit(&p.bundle(&mut pipeline, &cached_keys, BatchNum(1)));
    // A 3-key request: 2 cached, 1 miss.
    let keys = request_keys();
    let Assembly::Partial { cached, missing } = replay.assemble(&keys, Epoch::NONE, SimTime::ZERO)
    else {
        panic!("2-of-3 coverage must assemble partially");
    };
    assert_eq!(cached.batch(), BatchNum(1));
    assert_eq!(cached.reads.len(), 2);
    assert_eq!(missing, vec![Key::from_u32(7)]);
    assert_eq!(replay.stats.partial, 1);
    // The upstream fill, pinned at the anchor batch.
    let fill = p.bundle(&mut pipeline, &missing, BatchNum(1));
    let sections = [cached.clone(), fill];
    let values = verifier
        .verify_assembled(
            &p.keys,
            ClusterId(0),
            &sections,
            &keys,
            Epoch::NONE,
            SimTime(2_500),
        )
        .expect("assembled response verifies end to end");
    assert_eq!(values[0], (Key::from_u32(1), Some(Value::from("alpha-v2"))));
    assert_eq!(values[1], (Key::from_u32(2), Some(Value::from("beta"))));
    assert_eq!(values[2], (Key::from_u32(7), None));
    // A tampered cached section is caught against its own root.
    let mut forged = [sections[0].clone(), sections[1].clone()];
    forged[0].reads[0].value = Some(Value::from("forged"));
    assert_eq!(
        verifier
            .verify_assembled(
                &p.keys,
                ClusterId(0),
                &forged,
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::ValueMismatch(Key::from_u32(1))
    );
    // Sections at different batches would permit torn reads: rejected.
    let torn_fill = p.bundle(&mut pipeline, &[Key::from_u32(7)], BatchNum(0));
    assert_eq!(
        verifier
            .verify_assembled(
                &p.keys,
                ClusterId(0),
                &[cached.clone(), torn_fill],
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::TornAssembly {
            anchor: BatchNum(1),
            got: BatchNum(0)
        }
    );
    // A key answered twice across sections is rejected.
    let dup_fill = p.bundle(
        &mut pipeline,
        &[Key::from_u32(1), Key::from_u32(7)],
        BatchNum(1),
    );
    assert_eq!(
        verifier
            .verify_assembled(
                &p.keys,
                ClusterId(0),
                &[cached, dup_fill],
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::DuplicateKey(Key::from_u32(1))
    );
    // No sections at all is not a response.
    assert_eq!(
        verifier
            .verify_assembled::<TestHeader>(
                &p.keys,
                ClusterId(0),
                &[],
                &keys,
                Epoch::NONE,
                SimTime(2_500)
            )
            .unwrap_err(),
        ReadRejection::EmptyAssembly
    );
}

/// The staleness floor interacts with partial assembly per key: when a
/// key's only fresh-enough fragment set no longer covers the request,
/// just the stale/missing keys are refreshed upstream — not the whole
/// bundle.
#[test]
fn staleness_floor_refreshes_only_stale_keys() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    let k1 = Key::from_u32(1);
    let k2 = Key::from_u32(2);
    // Batch 0 (timestamp 1_000) cached both keys; batch 1 (timestamp
    // 2_000) cached only key 1.
    replay.admit(&p.bundle(&mut pipeline, &[k1.clone(), k2.clone()], BatchNum(0)));
    replay.admit(&p.bundle(&mut pipeline, std::slice::from_ref(&k1), BatchNum(1)));
    // Behind a floor both batches pass, the full batch-0 replay wins.
    match replay.assemble(&[k1.clone(), k2.clone()], Epoch::NONE, SimTime(500)) {
        Assembly::Full(bundle) => assert_eq!(bundle.batch(), BatchNum(0)),
        other => panic!("full coverage at batch 0 expected, got {other:?}"),
    }
    // Once batch 0 ages past the floor, key 2's fragments are stale:
    // the fresh batch 1 anchors, key 1 replays from cache, and ONLY
    // key 2 goes upstream — an aging fragment is a per-key refresh, not
    // a whole-bundle miss.
    match replay.assemble(&[k1.clone(), k2.clone()], Epoch::NONE, SimTime(1_500)) {
        Assembly::Partial { cached, missing } => {
            assert_eq!(cached.batch(), BatchNum(1));
            assert_eq!(cached.reads.len(), 1);
            assert_eq!(cached.reads[0].key, k1);
            assert_eq!(missing, vec![k2.clone()]);
        }
        other => panic!("stale fragments must be refreshed per key, got {other:?}"),
    }
    // Past every batch's timestamp: nothing usable, full pass.
    assert!(matches!(
        replay.assemble(&[k1, k2], Epoch::NONE, SimTime(2_500)),
        Assembly::Miss
    ));
}

/// Round-2 `min_epoch` fetches are satisfied from newer admitted
/// batches — fully when one covers the keys, partially (pinned fetch
/// for the rest) when it only covers some.
#[test]
fn round2_floor_served_from_newer_admitted_batches() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = vec![Key::from_u32(1), Key::from_u32(2)];
    // Full coverage at the newer batch: a round-2 floor the old batch
    // cannot reach (batch 0 has LCE = NONE, batch 1 has LCE = 0) is
    // served entirely from batch 1.
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    replay.admit(&p.bundle(&mut pipeline, &keys, BatchNum(0)));
    replay.admit(&p.bundle(&mut pipeline, &keys, BatchNum(1)));
    match replay.assemble(&keys, Epoch(0), SimTime::ZERO) {
        Assembly::Full(bundle) => assert_eq!(bundle.batch(), BatchNum(1)),
        other => panic!("round-2 floor must be served from batch 1, got {other:?}"),
    }
    // A floor no admitted batch reaches still passes upstream.
    assert!(matches!(
        replay.assemble(&keys, Epoch(5), SimTime::ZERO),
        Assembly::Miss
    ));
    // Partial coverage at the only floor-satisfying batch: anchor
    // there, fetch the rest pinned — previously a whole-bundle miss.
    let mut sparse: ReplayCache<TestHeader> = ReplayCache::new(1024, 8);
    sparse.admit(&p.bundle(&mut pipeline, &keys, BatchNum(0)));
    sparse.admit(&p.bundle(&mut pipeline, &keys[..1], BatchNum(1)));
    match sparse.assemble(&keys, Epoch(0), SimTime::ZERO) {
        Assembly::Partial { cached, missing } => {
            assert_eq!(cached.batch(), BatchNum(1));
            assert_eq!(missing, vec![Key::from_u32(2)]);
        }
        other => panic!("round-2 floor must anchor at batch 1, got {other:?}"),
    }
}

#[test]
fn replay_respects_freshness_floor_and_gc() {
    let p = two_batch_partition();
    let mut pipeline = ReadPipeline::new(1024);
    let keys = request_keys();
    // Only the newest commitment is retained (max_batches = 1).
    let mut replay: ReplayCache<TestHeader> = ReplayCache::new(1024, 1);
    let b0 = p.bundle(&mut pipeline, &keys, BatchNum(0));
    replay.admit(&b0);
    assert_eq!(replay.fragment_count(), keys.len());
    // Batch 1 (timestamp 2_000) evicts batch 0 and its fragments.
    let b1 = p.bundle(&mut pipeline, &keys, BatchNum(1));
    replay.admit(&b1);
    assert_eq!(replay.latest_batch(), Some(BatchNum(1)));
    assert_eq!(
        replay.fragment_count(),
        keys.len(),
        "fragments of the evicted batch 0 must be dropped"
    );
    // Fresh enough: replays.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime(1_500)).is_some());
    // Cached bundle older than the floor: pass upstream instead of
    // serving something the client would reject as stale.
    assert!(replay.replay(&keys, Epoch::NONE, SimTime(2_001)).is_none());
}
