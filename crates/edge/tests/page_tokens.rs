//! Property tests for the unified query verifier's pagination pins:
//! across random partition contents, ranges, and page widths, an
//! honest paginated scan verifies page by page to exactly the
//! committed rows of the full range — and **no tampered or replayed
//! [`PageToken`] survives [`ReadVerifier::verify_query`]**: swapping
//! the pinned batch (the page-splice attack) or moving the resume
//! bound outside the remaining range (replaying already-scanned
//! buckets, or fabricating a continuation) is rejected before any row
//! is accepted.

use std::collections::HashMap;

use proptest::prelude::*;
use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{
    sha256, Digest, KeyStore, MerkleProof, RangeProof, ScanRange, Sha256, VersionedMerkleTree,
};
use transedge_edge::{
    scan_snapshot, BatchCommitment, PageToken, QueryAnswer, ReadQuery, ReadRejection, ReadResponse,
    ReadVerifier, ScanBundle, SnapshotSource, VerifyParams,
};
use transedge_storage::VersionedStore;

/// Shallow tree: 64 buckets → dense windows and short page chains.
const DEPTH: u32 = 6;

#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/page-header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[9u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    fn commit(&mut self, writes: &[(u32, String)], timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(v.as_str());
            self.store.write(key.clone(), value.clone(), num);
            updates.push((key, value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce: Epoch::NONE,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    /// What an honest server answers a page query with: the scan of the
    /// query's current window, pinned where the query demands (or at
    /// `fallback` for unpinned first pages).
    fn serve(&self, query: &ReadQuery, fallback: BatchNum) -> ReadResponse<TestHeader> {
        let window = query.scan_window().expect("scan query");
        let at = query.pinned_batch().unwrap_or(fallback);
        ReadResponse::Scan {
            bundle: Box::new(ScanBundle {
                commitment: self.headers[at.0 as usize].clone(),
                cert: self.certs[at.0 as usize].clone(),
                scan: scan_snapshot(self, &window, at),
            }),
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }

    fn verify(
        &self,
        query: &ReadQuery,
        response: &ReadResponse<TestHeader>,
    ) -> Result<QueryAnswer, ReadRejection> {
        self.verifier()
            .verify_query(&self.keys, ClusterId(0), query, response, SimTime(2_500))
    }
}

/// Two batches over random keys; batch 1 always overwrites something so
/// the roots differ (the page-splice attack needs a second, different
/// root to splice from).
fn world(key_tags: &[(u16, u8)]) -> Partition {
    let mut p = Partition::new();
    let batch0: Vec<(u32, String)> = key_tags
        .iter()
        .map(|(k, v)| (*k as u32 % 512, format!("a{v}")))
        .collect();
    p.commit(&batch0, SimTime(1_000));
    let batch1: Vec<(u32, String)> = vec![(key_tags[0].0 as u32 % 512, "overwrite".to_string())];
    p.commit(&batch1, SimTime(2_000));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Honest pagination verifies page by page to exactly the committed
    /// rows of the range; tampered and replayed tokens never survive.
    #[test]
    fn tampered_page_tokens_never_survive(
        key_tags in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..32),
        first in 0u64..40,
        width in 2u64..24,
        window in 1u64..8,
    ) {
        let p = world(&key_tags);
        let last = (first + width - 1).min((1 << DEPTH) - 1);
        let range = ScanRange::new(first, last);
        let base = ReadQuery::scatter_scan(vec![ClusterId(0)], range, window);
        let latest = BatchNum(1);

        // --- Honest pagination: drive the token chain to exhaustion.
        let mut rows: Vec<(Key, Value)> = Vec::new();
        let mut query = base.clone();
        let mut pages = 0u64;
        let mut tokens: Vec<PageToken> = Vec::new();
        loop {
            let response = p.serve(&query, latest);
            let answer = p.verify(&query, &response).expect("honest page verifies");
            let QueryAnswer::Rows { rows: page_rows, next } = answer else {
                panic!("scan answer expected");
            };
            rows.extend(page_rows);
            pages += 1;
            match next {
                Some(token) => {
                    // Tokens pin the serving batch and advance strictly.
                    prop_assert_eq!(token.batch, latest);
                    prop_assert!(token.resume > range.first && token.resume <= range.last);
                    if let Some(prev) = tokens.last() {
                        prop_assert!(token.resume > prev.resume);
                    }
                    tokens.push(token);
                    query = base.clone().with_page(token);
                }
                None => break,
            }
        }
        prop_assert_eq!(pages, range.width().div_ceil(window));
        let mut expected: Vec<(Key, Value)> = p
            .store
            .range_at(range.digest_bounds(DEPTH), latest)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        expected.sort_by_key(|(k, _)| sha256(k.as_bytes()));
        prop_assert_eq!(&rows, &expected, "pages stitch to the full committed range");

        // The attacks below need at least one continuation token
        // (single-page ranges have none).
        if tokens.is_empty() {
            return Ok(());
        }
        let token = tokens[0];

        // --- 1. Batch swapped in the token: the served page (still a
        // perfectly valid proof!) is at the wrong batch → the page
        // splice is rejected before any row is accepted.
        let swapped = PageToken { batch: BatchNum(0), resume: token.resume };
        let q = base.clone().with_page(swapped);
        // An honest-at-batch-1 response does not match the swapped pin…
        let response = p.serve(&base.clone().with_page(token), latest);
        prop_assert_eq!(
            p.verify(&q, &response).unwrap_err(),
            ReadRejection::SnapshotPinMismatch { pinned: BatchNum(0), got: BatchNum(1) }
        );
        // …and a server that *honours* the forged pin serves a batch-0
        // page that can never splice into the batch-1 chain: the
        // verifier rejects it against the token the session actually
        // holds (batch 1).
        let spliced = p.serve(&q, latest);
        let held = base.clone().with_page(token);
        prop_assert_eq!(
            p.verify(&held, &spliced).unwrap_err(),
            ReadRejection::SnapshotPinMismatch { pinned: BatchNum(1), got: BatchNum(0) }
        );

        // --- 2. Resume bound moved backwards (to or before the first
        // window) or past the end: a replayed/fabricated token, rejected
        // outright.
        for resume in [range.first, range.first.saturating_sub(1), range.last + 1] {
            let bad = PageToken { batch: latest, resume };
            let q = base.clone().with_page(bad);
            let response = p.serve(&base.clone().with_page(token), latest);
            let err = p.verify(&q, &response).unwrap_err();
            prop_assert_eq!(
                err,
                ReadRejection::PageOutOfRange { resume, range },
                "resume bound {} must be rejected", resume
            );
        }
    }
}
