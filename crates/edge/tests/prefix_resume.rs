//! The prefix-resume protocol (`PrefixResume` +
//! `ReadVerifier::verify_query_resuming`): a scan restart at a raised
//! floor re-proves the already-verified prefix at the new snapshot
//! without resending its rows. Pinned here:
//!
//! * an unchanged prefix carries over — only fresh rows come back,
//!   matched against the new snapshot's completeness proof;
//! * a changed prefix is reported as `PrefixDiverged` (honest
//!   behaviour, restart signal — never byzantine evidence);
//! * omission, tampering, or row-stuffing in the fresh region is still
//!   caught exactly as in a full scan.

use std::collections::HashMap;

use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{
    Digest, KeyStore, MerkleProof, RangeProof, ScanRange, Sha256, VersionedMerkleTree,
};
use transedge_edge::{
    scan_snapshot, BatchCommitment, QueryAnswer, ReadQuery, ReadRejection, ReadResponse,
    ReadVerifier, ScanBundle, SnapshotSource, VerifyParams,
};
use transedge_storage::VersionedStore;

/// Shallow tree: 64 buckets → dense windows.
const DEPTH: u32 = 6;

#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }
    fn batch(&self) -> BatchNum {
        self.num
    }
    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }
    fn lce(&self) -> Epoch {
        self.lce
    }
    fn timestamp(&self) -> SimTime {
        self.timestamp
    }
    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/prefix-header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[7u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    fn commit(&mut self, writes: &[(u32, String)], timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(v.as_str());
            self.store.write(key.clone(), value.clone(), num);
            updates.push((key, value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce: Epoch::NONE,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    /// An honest prefix-resume answer for `query` at `at`: proof over
    /// the whole prefix-plus-page window, rows filtered past the
    /// prefix bound (what replicas and edges send on the wire).
    fn resume_bundle(&self, query: &ReadQuery, at: BatchNum) -> ScanBundle<TestHeader> {
        let window = query.scan_window().expect("scan query");
        let mut scan = scan_snapshot(self, &window, at);
        let through = query.fresh_rows_from().expect("prefix query");
        scan.rows
            .retain(|(key, _)| ScanRange::bucket_of(key, DEPTH) > through);
        ScanBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            scan,
        }
    }

    fn verifier(&self) -> ReadVerifier {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
    }

    fn verify_resume(
        &self,
        query: &ReadQuery,
        bundle: ScanBundle<TestHeader>,
        held: &[(Key, Value)],
    ) -> Result<QueryAnswer, ReadRejection> {
        self.verifier().verify_query_resuming(
            &self.keys,
            ClusterId(0),
            query,
            &ReadResponse::Scan {
                bundle: Box::new(bundle),
            },
            held,
            SimTime(5_000),
        )
    }
}

const RANGE: ScanRange = ScanRange { first: 0, last: 63 };
const THROUGH: u64 = 31;

/// Keys landing at or below / above the prefix bound.
fn keys_by_region() -> (Vec<u32>, Vec<u32>) {
    let mut prefix = Vec::new();
    let mut fresh = Vec::new();
    for k in 0u32..600 {
        let bucket = ScanRange::bucket_of(&Key::from_u32(k), DEPTH);
        if bucket <= THROUGH {
            if prefix.len() < 6 {
                prefix.push(k);
            }
        } else if bucket <= 47 && fresh.len() < 6 {
            // Stay inside the resume page's fresh region [32, 47] so
            // the batch-1 overwrite is visible in the resumed page.
            fresh.push(k);
        }
    }
    (prefix, fresh)
}

/// batch 0: rows everywhere; batch 1: a write *outside* the prefix
/// (prefix unchanged); batch 2: a write *inside* the prefix
/// (divergence).
fn world() -> (Partition, Vec<(Key, Value)>) {
    let (prefix_keys, fresh_keys) = keys_by_region();
    let mut p = Partition::new();
    let batch0: Vec<(u32, String)> = prefix_keys
        .iter()
        .chain(fresh_keys.iter())
        .map(|k| (*k, format!("v{k}")))
        .collect();
    p.commit(&batch0, SimTime(1_000));
    p.commit(
        &[(fresh_keys[0], "fresh-overwrite".to_string())],
        SimTime(2_000),
    );
    p.commit(
        &[(prefix_keys[0], "prefix-overwrite".to_string())],
        SimTime(3_000),
    );
    // The rows the client verified at batch 0 for buckets [0, THROUGH].
    let held: Vec<(Key, Value)> = p.rows_at(&ScanRange::new(RANGE.first, THROUGH), BatchNum(0));
    (p, held)
}

fn resume_query() -> ReadQuery {
    // Width 16: the resume window is [0, 47] — prefix plus one fresh
    // page, with [48, 63] still owed afterwards.
    ReadQuery::scatter_scan(vec![ClusterId(0)], RANGE, 16).with_prefix(THROUGH)
}

#[test]
fn unchanged_prefix_carries_over_and_pagination_continues() {
    let (p, held) = world();
    let query = resume_query();
    assert_eq!(query.scan_window(), Some(ScanRange::new(0, 47)));
    // Served at batch 1: the prefix region is untouched there.
    let bundle = p.resume_bundle(&query, BatchNum(1));
    let n_wire_rows = bundle.scan.rows.len();
    let answer = p
        .verify_resume(&query, bundle, &held)
        .expect("resume verifies");
    let QueryAnswer::Rows { rows, next } = answer else {
        panic!("scan answer expected");
    };
    // Only fresh rows returned (none of the held prefix re-shipped)…
    assert_eq!(rows.len(), n_wire_rows);
    assert!(rows
        .iter()
        .all(|(k, _)| ScanRange::bucket_of(k, DEPTH) > THROUGH));
    assert!(!rows.is_empty(), "fresh region holds committed rows");
    // …reflecting the *new* snapshot…
    let overwritten = rows
        .iter()
        .find(|(_, v)| v.as_bytes() == b"fresh-overwrite");
    assert!(
        overwritten.is_some(),
        "batch 1's write is in the fresh page"
    );
    // …and pagination continues from the window end, pinned to the new
    // batch.
    let token = next.expect("more range left");
    assert_eq!(token.batch, BatchNum(1));
    assert_eq!(token.resume, 48);
}

#[test]
fn changed_prefix_is_divergence_not_byzantine() {
    let (p, held) = world();
    let query = resume_query();
    // Served at batch 2: a prefix row was overwritten there.
    let bundle = p.resume_bundle(&query, BatchNum(2));
    assert_eq!(
        p.verify_resume(&query, bundle, &held),
        Err(ReadRejection::PrefixDiverged)
    );
}

#[test]
fn fresh_region_forgeries_are_still_caught() {
    let (p, held) = world();
    let query = resume_query();
    // Omission: drop one fresh row (proof untouched).
    let mut omitted = p.resume_bundle(&query, BatchNum(1));
    omitted.scan.rows.remove(0);
    assert!(matches!(
        p.verify_resume(&query, omitted, &held),
        Err(ReadRejection::IncompleteScan { .. })
    ));
    // Tamper: rewrite one fresh value.
    let mut tampered = p.resume_bundle(&query, BatchNum(1));
    tampered.scan.rows[0].1 = Value::from("forged");
    assert!(matches!(
        p.verify_resume(&query, tampered, &held),
        Err(ReadRejection::ScanRowMismatch(_))
    ));
    // Row-stuffing: resend the held prefix rows despite the resume
    // marker (they double-answer proven entries).
    let mut stuffed = p.resume_bundle(&query, BatchNum(1));
    let mut rows = held.clone();
    rows.extend(stuffed.scan.rows.clone());
    stuffed.scan.rows = rows;
    assert!(matches!(
        p.verify_resume(&query, stuffed, &held),
        Err(ReadRejection::IncompleteScan { .. })
    ));
}

#[test]
fn malformed_prefix_bounds_are_rejected() {
    let (p, held) = world();
    // A prefix bound past the range end is a tampered resume marker.
    let bad = ReadQuery::scatter_scan(vec![ClusterId(0)], RANGE, 16).with_prefix(99);
    let honest = ScanBundle {
        commitment: p.headers[1].clone(),
        cert: p.certs[1].clone(),
        scan: scan_snapshot(&p, &RANGE, BatchNum(1)),
    };
    assert!(matches!(
        p.verify_resume(&bad, honest, &held),
        Err(ReadRejection::PageOutOfRange { .. })
    ));
}

#[test]
fn completed_scan_revalidates_with_zero_fresh_rows() {
    // Restarting a *finished* scan: the whole range is prefix; the
    // resume answer is a proof with no rows at all.
    let (p, _) = world();
    let held: Vec<(Key, Value)> = p.rows_at(&RANGE, BatchNum(0));
    let query = ReadQuery::scatter_scan(vec![ClusterId(0)], RANGE, 16).with_prefix(RANGE.last);
    assert_eq!(query.scan_window(), Some(RANGE));
    let bundle = p.resume_bundle(&query, BatchNum(1));
    // Batch 1 overwrote a fresh-region row, which for a full-range
    // prefix *is* part of the prefix → divergence.
    assert_eq!(
        p.verify_resume(&query, bundle, &held),
        Err(ReadRejection::PrefixDiverged)
    );
    // Held rows taken at batch 1 itself revalidate cleanly.
    let held1: Vec<(Key, Value)> = p.rows_at(&RANGE, BatchNum(1));
    let bundle1 = p.resume_bundle(&query, BatchNum(1));
    assert!(bundle1.scan.rows.is_empty(), "nothing fresh to ship");
    let answer = p
        .verify_resume(&query, bundle1, &held1)
        .expect("revalidates");
    assert_eq!(
        answer,
        QueryAnswer::Rows {
            rows: vec![],
            next: None
        }
    );
}
