//! Adversarial property tests for Merkle multiproof responses: an
//! untrusted edge holding a valid multiproof body must not be able to
//! omit a requested key, substitute a sibling, splice proofs across
//! batches, or tamper with any value slot without tripping a typed
//! rejection from `verify_multi`.

use proptest::prelude::*;
use transedge_common::{
    BatchNum, ClusterId, ClusterTopology, Epoch, Key, NodeId, SimDuration, SimTime, Value,
};
use transedge_consensus::messages::accept_statement;
use transedge_consensus::Certificate;
use transedge_crypto::merkle::value_digest;
use transedge_crypto::{Digest, KeyStore, MerkleProof, ScanRange, Sha256, VersionedMerkleTree};
use transedge_edge::{
    BatchCommitment, MultiProofBody, MultiProofBundle, QueryAnswer, ReadPipeline, ReadQuery,
    ReadRejection, ReadResponse, ReadVerifier, SnapshotSource, VerifyParams,
};
use transedge_storage::VersionedStore;

const DEPTH: u32 = 8;

/// A minimal certified batch header for tests (the commitment shape
/// `transedge-core` provides in production).
#[derive(Clone, Debug)]
struct TestHeader {
    cluster: ClusterId,
    num: BatchNum,
    merkle_root: Digest,
    lce: Epoch,
    timestamp: SimTime,
}

impl BatchCommitment for TestHeader {
    fn cluster(&self) -> ClusterId {
        self.cluster
    }

    fn batch(&self) -> BatchNum {
        self.num
    }

    fn merkle_root(&self) -> &Digest {
        &self.merkle_root
    }

    fn lce(&self) -> Epoch {
        self.lce
    }

    fn timestamp(&self) -> SimTime {
        self.timestamp
    }

    fn certified_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"test/header");
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.num.0.to_le_bytes());
        h.update(self.merkle_root.as_bytes());
        h.update(&self.lce.0.to_le_bytes());
        h.update(&self.timestamp.0.to_le_bytes());
        h.finalize()
    }
}

struct Partition {
    topo: ClusterTopology,
    keys: KeyStore,
    secrets: std::collections::HashMap<transedge_common::ReplicaId, transedge_crypto::Keypair>,
    store: VersionedStore,
    tree: VersionedMerkleTree,
    headers: Vec<TestHeader>,
    certs: Vec<Certificate>,
}

impl SnapshotSource for Partition {
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
        self.store.read_at(key, batch).map(|v| v.value.clone())
    }

    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
        self.tree.prove_at(key, batch.0)
    }

    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
        self.store
            .range_at(range.digest_bounds(DEPTH), batch)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect()
    }

    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> transedge_crypto::RangeProof {
        self.tree.prove_range(range, batch.0)
    }

    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> transedge_crypto::MultiProof {
        self.tree.prove_multi(keys, batch.0)
    }
}

impl Partition {
    fn new() -> Self {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[9u8; 32]);
        Partition {
            topo,
            keys,
            secrets,
            store: VersionedStore::new(),
            tree: VersionedMerkleTree::with_depth(DEPTH),
            headers: Vec::new(),
            certs: Vec::new(),
        }
    }

    fn commit(&mut self, writes: &[(u32, String)], timestamp: SimTime) {
        let num = BatchNum(self.headers.len() as u64);
        let mut updates = Vec::new();
        for (k, v) in writes {
            let key = Key::from_u32(*k);
            let value = Value::from(v.as_str());
            self.store.write(key.clone(), value.clone(), num);
            updates.push((key, value_digest(&value)));
        }
        let root = self
            .tree
            .apply_batch(num.0, updates.iter().map(|(k, d)| (k, *d)));
        let header = TestHeader {
            cluster: ClusterId(0),
            num,
            merkle_root: root,
            lce: Epoch::NONE,
            timestamp,
        };
        let digest = header.certified_digest();
        let stmt = accept_statement(ClusterId(0), num, &digest);
        let quorum = self.topo.certificate_quorum();
        let sigs: Vec<_> = self
            .topo
            .replicas_of(ClusterId(0))
            .take(quorum)
            .map(|r| (NodeId::Replica(r), self.secrets[&r].sign(&stmt)))
            .collect();
        self.headers.push(header);
        self.certs.push(Certificate {
            cluster: ClusterId(0),
            slot: num,
            digest,
            sigs,
        });
    }

    fn multi_bundle(
        &self,
        pipeline: &mut ReadPipeline,
        keys: &[Key],
        at: BatchNum,
    ) -> MultiProofBundle<TestHeader> {
        MultiProofBundle {
            commitment: self.headers[at.0 as usize].clone(),
            cert: self.certs[at.0 as usize].clone(),
            body: pipeline.serve_multi(self, keys, at),
        }
    }

    fn verify(
        &self,
        bundle: &MultiProofBundle<TestHeader>,
        requested: &[Key],
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        ReadVerifier::new(VerifyParams {
            tree_depth: DEPTH,
            freshness_window: SimDuration::from_secs(30),
            quorum: self.topo.certificate_quorum(),
        })
        .verify_multi(
            &self.keys,
            ClusterId(0),
            bundle,
            requested,
            Epoch::NONE,
            SimTime(2_500),
        )
    }
}

/// Rebuild a bundle's body from tampered parts (the wire image is
/// shared and immutable, so an attacker re-encodes — exactly what the
/// simulator's byzantine edge does).
fn rebuild(
    bundle: &MultiProofBundle<TestHeader>,
    keys: Vec<Key>,
    values: Vec<Option<Value>>,
    proof: transedge_crypto::MultiProof,
) -> MultiProofBundle<TestHeader> {
    MultiProofBundle {
        commitment: bundle.commitment.clone(),
        cert: bundle.cert.clone(),
        body: MultiProofBody::new(keys, values, proof),
    }
}

/// Two batches over random keys; batch 1 always overwrites something so
/// the roots differ (the splice attack needs a second, different root).
fn world(key_tags: &[(u16, u8)]) -> Partition {
    let mut p = Partition::new();
    let batch0: Vec<(u32, String)> = key_tags
        .iter()
        .map(|(k, v)| (*k as u32 % 512, format!("a{v}")))
        .collect();
    p.commit(&batch0, SimTime(1_000));
    p.commit(
        &[(key_tags[0].0 as u32 % 512, "overwrite".to_string())],
        SimTime(2_000),
    );
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Honest multiproofs verify to exactly the committed content;
    /// every omission, sibling substitution, bucket tamper, value
    /// forgery, and cross-batch splice is rejected with the right
    /// typed error.
    #[test]
    fn multiproof_forgeries_never_survive(
        key_tags in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..24),
        absent_tag in 0u16..512,
    ) {
        let p = world(&key_tags);
        // Request the committed keys plus one probably-absent key:
        // multiproofs must prove absences too.
        let mut requested: Vec<Key> = key_tags
            .iter()
            .map(|(k, _)| Key::from_u32(*k as u32 % 512))
            .chain([Key::from_u32(512 + absent_tag as u32)])
            .collect();
        requested.sort();
        requested.dedup();
        let mut pipeline = ReadPipeline::new(1024);
        let honest = p.multi_bundle(&mut pipeline, &requested, BatchNum(1));

        // Honest: verifies, in request order, to the committed state.
        let values = p.verify(&honest, &requested).expect("honest multiproof verifies");
        prop_assert_eq!(values.len(), requested.len());
        for (key, value) in &values {
            prop_assert_eq!(value.clone(), p.value_at(key, BatchNum(1)), "key {:?}", key);
        }
        // The shared wire image matches the structural size exactly.
        prop_assert_eq!(honest.body.encoded_len(), honest.body.wire_bytes().len());

        // 1. Omission: drop each proven key (and its value slot) while
        // keeping the joint proof. The requested-coverage check fires
        // before any hashing, naming the missing key.
        for i in 0..honest.body.keys.len() {
            let mut keys = honest.body.keys.clone();
            let mut vals = honest.body.values.clone();
            let dropped = keys.remove(i);
            vals.remove(i);
            let forged = rebuild(&honest, keys, vals, honest.body.proof.clone());
            prop_assert_eq!(
                p.verify(&forged, &requested).unwrap_err(),
                ReadRejection::MultiProofKeyMissing(dropped)
            );
        }

        // 2. Sibling substitution / removal: the joint fold breaks.
        for j in 0..honest.body.proof.siblings.len() {
            let mut proof = honest.body.proof.clone();
            proof.siblings[j] = Digest([0xEE; 32]);
            let forged = rebuild(
                &honest,
                honest.body.keys.clone(),
                honest.body.values.clone(),
                proof,
            );
            prop_assert_eq!(
                p.verify(&forged, &requested).unwrap_err(),
                ReadRejection::BadMultiProof
            );

            let mut proof = honest.body.proof.clone();
            proof.siblings.remove(j);
            let forged = rebuild(
                &honest,
                honest.body.keys.clone(),
                honest.body.values.clone(),
                proof,
            );
            prop_assert_eq!(
                p.verify(&forged, &requested).unwrap_err(),
                ReadRejection::BadMultiProof
            );
        }

        // 3. Bucket tamper: rewrite a proven value digest inside a
        // bucket — the recomputed root no longer matches.
        for bi in 0..honest.body.proof.buckets.len() {
            for ei in 0..honest.body.proof.buckets[bi].entries.len() {
                let mut proof = honest.body.proof.clone();
                proof.buckets[bi].entries[ei].value_hash = Digest([0xAB; 32]);
                let forged = rebuild(
                    &honest,
                    honest.body.keys.clone(),
                    honest.body.values.clone(),
                    proof,
                );
                prop_assert!(p.verify(&forged, &requested).is_err());
            }
        }

        // 4. Value forgery: a present slot swapped for a lie is a
        // ValueMismatch; a conjured value on a proven absence is a
        // PhantomValue.
        for i in 0..honest.body.values.len() {
            let mut vals = honest.body.values.clone();
            let expect = match &vals[i] {
                Some(_) => ReadRejection::ValueMismatch(honest.body.keys[i].clone()),
                None => ReadRejection::PhantomValue(honest.body.keys[i].clone()),
            };
            vals[i] = Some(Value::from("forged"));
            let forged = rebuild(
                &honest,
                honest.body.keys.clone(),
                vals,
                honest.body.proof.clone(),
            );
            prop_assert_eq!(p.verify(&forged, &requested).unwrap_err(), expect);
        }

        // 5. Cross-batch splice: batch 0's internally consistent body
        // under batch 1's certified commitment folds to the wrong root.
        let mut stale_pipeline = ReadPipeline::new(1024);
        let stale = p.multi_bundle(&mut stale_pipeline, &requested, BatchNum(0));
        let spliced = MultiProofBundle {
            commitment: honest.commitment.clone(),
            cert: honest.cert.clone(),
            body: stale.body,
        };
        prop_assert_eq!(
            p.verify(&spliced, &requested).unwrap_err(),
            ReadRejection::BadMultiProof
        );
    }
}

/// The unified dispatch point: a `ReadResponse::Multi` flows through
/// `verify_query` to the same multiproof chain — honest responses
/// answer the query, forged ones trip the same typed rejections.
#[test]
fn verify_query_dispatches_multi_responses() {
    let mut p = Partition::new();
    p.commit(
        &[(1, "alpha".to_string()), (2, "beta".to_string())],
        SimTime(1_000),
    );
    p.commit(&[(1, "alpha-v2".to_string())], SimTime(2_000));
    let requested = vec![Key::from_u32(1), Key::from_u32(2), Key::from_u32(7)];
    let query = ReadQuery::point(requested.clone());
    let mut pipeline = ReadPipeline::new(1024);
    let honest = p.multi_bundle(&mut pipeline, &requested, BatchNum(1));
    let verifier = ReadVerifier::new(VerifyParams {
        tree_depth: DEPTH,
        freshness_window: SimDuration::from_secs(30),
        quorum: p.topo.certificate_quorum(),
    });

    let response = ReadResponse::Multi {
        bundle: Box::new(honest.clone()),
        fresh: None,
    };
    match verifier
        .verify_query(&p.keys, ClusterId(0), &query, &response, SimTime(2_500))
        .expect("honest multi response verifies through verify_query")
    {
        QueryAnswer::Values(values) => {
            assert_eq!(values[0].1, Some(Value::from("alpha-v2")));
            assert_eq!(values[1].1, Some(Value::from("beta")));
            assert_eq!(values[2].1, None);
        }
        other => panic!("point query must yield values, got {other:?}"),
    }

    // Omission through the full dispatch chain.
    let mut keys = honest.body.keys.clone();
    let mut vals = honest.body.values.clone();
    let dropped = keys.remove(0);
    vals.remove(0);
    let forged = ReadResponse::Multi {
        bundle: Box::new(rebuild(&honest, keys, vals, honest.body.proof.clone())),
        fresh: None,
    };
    assert_eq!(
        verifier
            .verify_query(&p.keys, ClusterId(0), &query, &forged, SimTime(2_500))
            .unwrap_err(),
        ReadRejection::MultiProofKeyMissing(dropped)
    );

    // Sibling substitution through the full dispatch chain.
    let mut proof = honest.body.proof.clone();
    proof.siblings[0] = Digest([0xEE; 32]);
    let forged = ReadResponse::Multi {
        bundle: Box::new(rebuild(
            &honest,
            honest.body.keys.clone(),
            honest.body.values.clone(),
            proof,
        )),
        fresh: None,
    };
    assert_eq!(
        verifier
            .verify_query(&p.keys, ClusterId(0), &query, &forged, SimTime(2_500))
            .unwrap_err(),
        ReadRejection::BadMultiProof
    );
}
