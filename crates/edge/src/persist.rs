//! The edge persistence plane: durable, content-addressed snapshot
//! objects that make a restarted edge warm instead of a thundering
//! herd on the replicas.
//!
//! ## Trust model: disk is untrusted input
//!
//! Everything in a [`SnapshotStore`] was written *before* the crash,
//! by a process that may have been compromised, on media that may have
//! rotted. So nothing read back is trusted: each object is
//! content-addressed (its key is a digest of its proof-carrying body),
//! and on hydration the digest is recomputed **and** the object is
//! re-admitted through the client-grade
//! [`crate::ReadVerifier`] — the same certificate + Merkle chain a
//! response from an untrusted network edge must pass. A bit-flipped,
//! spliced, or forged on-disk object is silently dropped, never
//! served. This is WedgeChain's lazy-certification model applied to
//! the edge's own disk: persist optimistically, validate before use.
//!
//! ## Layout
//!
//! The store is an append-only [`ObjectArchive`] of
//! [`SnapshotObject`]s (the three proof shapes of the wire protocol,
//! exactly as they travel) plus one small mutable [`HeadRecord`] per
//! cluster shard, naming the live object set and the newest persisted
//! batch. Restart follows axiograph's accepted-plane replication:
//! immutable objects first, then the head pointers — an interrupted
//! spill leaves dangling objects (harmless garbage), never a head
//! pointing at missing state.

use std::collections::BTreeMap;

use transedge_common::{BatchNum, ClusterId, Key, SimTime};
use transedge_consensus::Certificate;
use transedge_crypto::{sha256, Digest, KeyStore, Sha256};

use crate::response::{BatchCommitment, MultiProofBundle, ProofBundle, ScanBundle};
use crate::verifier::{ReadRejection, ReadVerifier};

use transedge_storage::ObjectArchive;

/// Persistence-plane configuration for one edge node. Constructed via
/// the deployment-level `EdgeConfig` builder; the defaults here are
/// what [`PersistPlan::enabled`] hands out.
#[derive(Clone, Copy, Debug)]
pub struct PersistPlan {
    /// Master switch: spill admitted objects and keep HEAD records.
    pub enabled: bool,
    /// Re-admit the store's contents through the verifier on start.
    pub hydrate_on_start: bool,
    /// If the disk yields nothing servable, bootstrap by verified
    /// state-transfer from a coverage-ranked sibling (chosen via the
    /// gossiped directory) instead of faulting every read upstream.
    pub sibling_transfer: bool,
    /// Durable objects retained per cluster shard; the oldest spill
    /// past it is pruned (retention, not invalidation).
    pub spill_threshold: usize,
}

impl PersistPlan {
    /// No persistence: today's purely in-memory edge.
    pub fn disabled() -> Self {
        PersistPlan {
            enabled: false,
            hydrate_on_start: false,
            sibling_transfer: false,
            spill_threshold: 0,
        }
    }

    /// The full plane: spill on admission, hydrate on start, sibling
    /// bootstrap when cold.
    pub fn enabled() -> Self {
        PersistPlan {
            enabled: true,
            hydrate_on_start: true,
            sibling_transfer: true,
            spill_threshold: DEFAULT_SPILL_THRESHOLD,
        }
    }
}

/// Default per-cluster retention: comfortably above a replay cache's
/// working set (`max_batches` commitments × a few objects each).
pub const DEFAULT_SPILL_THRESHOLD: usize = 256;

/// One durable snapshot object: a proof-carrying response body,
/// exactly as it travels on the wire — which is what makes it safe to
/// persist (nothing an edge writes is load-bearing; the proofs are)
/// and free to re-verify (the hydration path *is* the network
/// verification path).
#[derive(Clone, Debug)]
pub enum SnapshotObject<H> {
    /// Per-key point proofs under one certified commitment.
    Point(ProofBundle<H>),
    /// A proof-carrying scan window.
    Scan(ScanBundle<H>),
    /// A batched multiproof body — its shared wire image serializes
    /// for free, so its content digest covers every proof byte.
    Multi(MultiProofBundle<H>),
}

impl<H: BatchCommitment> SnapshotObject<H> {
    /// Partition the object snapshots.
    pub fn cluster(&self) -> ClusterId {
        match self {
            SnapshotObject::Point(b) => b.commitment.cluster(),
            SnapshotObject::Scan(b) => b.commitment.cluster(),
            SnapshotObject::Multi(b) => b.commitment.cluster(),
        }
    }

    /// Batch the object snapshots.
    pub fn batch(&self) -> BatchNum {
        match self {
            SnapshotObject::Point(b) => b.batch(),
            SnapshotObject::Scan(b) => b.batch(),
            SnapshotObject::Multi(b) => b.batch(),
        }
    }

    /// The content address: a domain-separated digest over the
    /// certified commitment, its certificate, and the value-bearing
    /// body. Any mutation of stored *values* changes the address (the
    /// self-check half of the gate); mutations of proof or signature
    /// bytes that the digest does not cover are exactly what the
    /// verifier half of the gate re-checks cryptographically.
    pub fn content_digest(&self) -> Digest {
        let mut h = Sha256::new();
        match self {
            SnapshotObject::Point(b) => {
                h.update(b"transedge/persist/point");
                fold_commitment(&mut h, &b.commitment, &b.cert);
                h.update(&(b.reads.len() as u64).to_le_bytes());
                for read in &b.reads {
                    fold_key(&mut h, &read.key);
                    match &read.value {
                        Some(v) => {
                            h.update(&[1]);
                            h.update(&(v.len() as u32).to_le_bytes());
                            h.update(v.as_bytes());
                        }
                        None => {
                            h.update(&[0]);
                        }
                    }
                }
            }
            SnapshotObject::Scan(b) => {
                h.update(b"transedge/persist/scan");
                fold_commitment(&mut h, &b.commitment, &b.cert);
                h.update(&b.scan.range.first.to_le_bytes());
                h.update(&b.scan.range.last.to_le_bytes());
                h.update(&(b.scan.rows.len() as u64).to_le_bytes());
                for (key, value) in &b.scan.rows {
                    fold_key(&mut h, key);
                    h.update(&(value.len() as u32).to_le_bytes());
                    h.update(value.as_bytes());
                }
            }
            SnapshotObject::Multi(b) => {
                h.update(b"transedge/persist/multi");
                fold_commitment(&mut h, &b.commitment, &b.cert);
                // The body's canonical wire image (keys, value slots,
                // joint proof) is shared by every clone — digesting it
                // costs one pass over bytes that already exist.
                h.update(b.body.wire_bytes());
            }
        }
        h.finalize()
    }
}

/// Fold a commitment + certificate into a content digest. The
/// certified digest covers every commitment field (root, LCE,
/// timestamp, delta digest), so one digest pins them all; the
/// certificate's signature bytes are left to `cert.verify` at
/// re-admission.
fn fold_commitment<H: BatchCommitment>(h: &mut Sha256, commitment: &H, cert: &Certificate) {
    h.update(&(commitment.cluster().as_usize() as u64).to_le_bytes());
    h.update(&commitment.batch().0.to_le_bytes());
    h.update(commitment.certified_digest().as_bytes());
    h.update(cert.digest.as_bytes());
    h.update(&(cert.sigs.len() as u64).to_le_bytes());
}

fn fold_key(h: &mut Sha256, key: &Key) {
    h.update(&(key.len() as u32).to_le_bytes());
    h.update(key.as_bytes());
}

/// The mutable half of the store: one small record per cluster shard,
/// flipped *after* its objects are durable (accepted-plane order).
#[derive(Clone, Debug, Default)]
pub struct HeadRecord {
    /// Newest persisted batch for the cluster.
    pub newest_batch: Option<BatchNum>,
    /// Digests of the live object set, oldest spill first.
    pub live: Vec<Digest>,
}

/// Persistence counters (the edge node's stats mirror the
/// hydration-side ones).
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistStats {
    /// Objects spilled (first write of a content address).
    pub spilled: u64,
    /// Spills dropped as duplicates of an already-durable object.
    pub deduped: u64,
    /// Objects pruned by the per-cluster retention threshold.
    pub pruned: u64,
}

impl transedge_obs::RegisterMetrics for PersistStats {
    fn register_metrics(&self, scope: &str, reg: &mut transedge_obs::MetricRegistry) {
        reg.counter(scope, "persist.spilled", self.spilled);
        reg.counter(scope, "persist.deduped", self.deduped);
        reg.counter(scope, "persist.pruned", self.pruned);
    }
}

/// The durable state of one edge node. In the simulator this is a
/// plain value that survives the actor's teardown (the deployment
/// holds it across crash/restart, playing the role of the disk); the
/// layout — append-only content-addressed objects + per-cluster HEAD
/// records — is exactly what a file-backed implementation would fsync.
#[derive(Clone, Debug)]
pub struct SnapshotStore<H> {
    objects: ObjectArchive<SnapshotObject<H>>,
    heads: BTreeMap<ClusterId, HeadRecord>,
    spill_threshold: usize,
    pub stats: PersistStats,
}

impl<H: BatchCommitment + Clone> SnapshotStore<H> {
    pub fn new(spill_threshold: usize) -> Self {
        SnapshotStore {
            objects: ObjectArchive::new(),
            heads: BTreeMap::new(),
            spill_threshold: spill_threshold.max(1),
            stats: PersistStats::default(),
        }
    }

    /// Counters of the underlying content-addressed archive.
    pub fn archive_stats(&self) -> transedge_storage::ObjectArchiveStats {
        self.objects.stats
    }

    /// Spill one admitted object: append it (content-addressed, so a
    /// replay of an already-durable object is a free dedup), then flip
    /// the cluster's HEAD — object first, pointer second. Retention
    /// prunes the oldest live object past the threshold. Returns the
    /// content address.
    pub fn spill(&mut self, object: SnapshotObject<H>) -> Digest {
        let cluster = object.cluster();
        let batch = object.batch();
        let digest = object.content_digest();
        if self.objects.put(digest, object) {
            self.stats.spilled += 1;
            let head = self.heads.entry(cluster).or_default();
            head.live.push(digest);
            if head.newest_batch.is_none_or(|n| batch.0 > n.0) {
                head.newest_batch = Some(batch);
            }
            while head.live.len() > self.spill_threshold {
                let oldest = head.live.remove(0);
                self.objects.remove(&oldest);
                self.stats.pruned += 1;
            }
        } else {
            self.stats.deduped += 1;
        }
        digest
    }

    /// The hydration worklist: every `(cluster, digest)` reachable from
    /// a HEAD record, oldest spill first (so newer objects re-admitted
    /// later win any cache-level displacement).
    pub fn hydration_set(&self) -> Vec<(ClusterId, Digest)> {
        self.heads
            .iter()
            .flat_map(|(cluster, head)| head.live.iter().map(|d| (*cluster, *d)))
            .collect()
    }

    /// The object stored under `digest`, if any. Untrusted until it
    /// passes [`readmit`].
    pub fn get(&self, digest: &Digest) -> Option<&SnapshotObject<H>> {
        self.objects.get(digest)
    }

    /// Drop an object that failed re-admission (and its HEAD entry) —
    /// a tampered object is purged, never served and never re-offered.
    pub fn purge(&mut self, cluster: ClusterId, digest: &Digest) {
        self.objects.remove(digest);
        if let Some(head) = self.heads.get_mut(&cluster) {
            head.live.retain(|d| d != digest);
        }
    }

    /// Current live objects of one cluster, oldest spill first — what a
    /// warm sibling offers a cold peer in a state transfer.
    pub fn objects_for(&self, cluster: ClusterId) -> Vec<SnapshotObject<H>> {
        self.heads
            .get(&cluster)
            .map(|head| {
                head.live
                    .iter()
                    .filter_map(|d| self.objects.get(d).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The cluster's HEAD record, if it has ever spilled.
    pub fn head(&self, cluster: ClusterId) -> Option<&HeadRecord> {
        self.heads.get(&cluster)
    }

    /// Clusters with a live HEAD.
    pub fn clusters(&self) -> Vec<ClusterId> {
        self.heads.keys().copied().collect()
    }

    /// Durable objects across all clusters.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Fault injection: mutate the object stored under `digest` in
    /// place, leaving its index entry (the content address) unchanged —
    /// the simulator's model of on-disk corruption. See
    /// [`ObjectArchive::get_mut`].
    pub fn tamper_with(&mut self, digest: &Digest, f: impl FnOnce(&mut SnapshotObject<H>)) -> bool {
        match self.objects.get_mut(digest) {
            Some(object) => {
                f(object);
                true
            }
            None => false,
        }
    }

    /// Fault injection: swap the payloads under two content addresses
    /// (a corrupted directory block). See [`ObjectArchive::splice`].
    pub fn splice(&mut self, a: &Digest, b: &Digest) -> bool {
        self.objects.splice(a, b)
    }
}

/// Why a stored object was not re-admitted at hydration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HydrateReject {
    /// The recomputed content digest does not match the address the
    /// object was stored under — the payload changed on disk.
    DigestMismatch,
    /// The object's proof chain no longer verifies (tampered value,
    /// forged certificate, spliced proof — every lie the network
    /// verifier catches, caught again here).
    Verification(ReadRejection),
}

/// Re-admit one stored object through the client-grade verifier:
/// recompute the content address, then run the object's own proof
/// chain (certificate, freshness, Merkle/completeness proofs) exactly
/// as if it had just arrived from an untrusted network peer. The LCE
/// floor is `Epoch::NONE` — a restart has no round-2 context; floors
/// re-apply per request once the object is back in the cache.
///
/// `Err(HydrateReject::Verification(ReadRejection::StaleTimestamp))`
/// deserves a gentler hand than the other rejections: an object that
/// merely aged past the freshness window during the outage is honest
/// history, not evidence of tampering. Callers count it separately.
pub fn readmit<H: BatchCommitment>(
    verifier: &ReadVerifier,
    keys: &KeyStore,
    stored_under: &Digest,
    object: &SnapshotObject<H>,
    now: SimTime,
) -> Result<(), HydrateReject> {
    if object.content_digest() != *stored_under {
        return Err(HydrateReject::DigestMismatch);
    }
    verify_object(verifier, keys, object, now).map_err(HydrateReject::Verification)
}

/// Run a snapshot object through its wire-protocol proof chain (no
/// digest check — used both by [`readmit`] and by the sibling
/// state-transfer receive path, where the object arrived by network
/// and has no stored address yet).
pub fn verify_object<H: BatchCommitment>(
    verifier: &ReadVerifier,
    keys: &KeyStore,
    object: &SnapshotObject<H>,
    now: SimTime,
) -> Result<(), ReadRejection> {
    let cluster = object.cluster();
    let none = transedge_common::Epoch::NONE;
    match object {
        SnapshotObject::Point(bundle) => {
            let expected: Vec<Key> = bundle.reads.iter().map(|r| r.key.clone()).collect();
            verifier
                .verify_bundle(keys, cluster, bundle, &expected, none, now)
                .map(|_| ())
        }
        SnapshotObject::Scan(bundle) => verifier
            .verify_scan(keys, cluster, bundle, &bundle.scan.range, none, now)
            .map(|_| ()),
        SnapshotObject::Multi(bundle) => verifier
            .verify_multi(keys, cluster, bundle, &bundle.body.keys, none, now)
            .map(|_| ()),
    }
}

/// Is this rejection mere staleness (honest aging during the outage)
/// rather than evidence of tampering?
pub fn is_stale_only(reject: &HydrateReject) -> bool {
    matches!(
        reject,
        HydrateReject::Verification(ReadRejection::StaleTimestamp)
    )
}

/// Convenience used by size estimators: an object's approximate wire
/// size (the simulator's bandwidth model for state transfers).
pub fn object_size<H: BatchCommitment>(object: &SnapshotObject<H>) -> usize {
    const HEADER_AND_CERT: usize = 132;
    match object {
        SnapshotObject::Point(b) => {
            HEADER_AND_CERT
                + b.reads
                    .iter()
                    .map(|r| {
                        r.key.len() + r.value.as_ref().map_or(0, |v| v.len()) + 33 * 16
                        // proof path estimate
                    })
                    .sum::<usize>()
        }
        SnapshotObject::Scan(b) => HEADER_AND_CERT + b.scan.encoded_len(),
        SnapshotObject::Multi(b) => HEADER_AND_CERT + b.body.encoded_len(),
    }
}

/// Deterministic helper for tests: a digest that addresses nothing.
pub fn null_digest() -> Digest {
    sha256(b"transedge/persist/null")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{ProofBundle, ProvenRead};
    use transedge_common::{Epoch, Value};
    use transedge_crypto::MerkleProof;

    #[derive(Clone, Debug)]
    struct Header {
        cluster: ClusterId,
        batch: BatchNum,
    }

    impl BatchCommitment for Header {
        fn cluster(&self) -> ClusterId {
            self.cluster
        }
        fn batch(&self) -> BatchNum {
            self.batch
        }
        fn merkle_root(&self) -> &Digest {
            unreachable!("store tests never verify proofs")
        }
        fn lce(&self) -> Epoch {
            Epoch::NONE
        }
        fn timestamp(&self) -> SimTime {
            SimTime::ZERO
        }
        fn certified_digest(&self) -> Digest {
            sha256(&self.batch.0.to_le_bytes())
        }
    }

    fn point(cluster: u16, batch: u64, key: &str, value: &str) -> SnapshotObject<Header> {
        SnapshotObject::Point(ProofBundle {
            commitment: Header {
                cluster: ClusterId(cluster),
                batch: BatchNum(batch),
            },
            cert: Certificate {
                cluster: ClusterId(cluster),
                slot: BatchNum(batch),
                digest: sha256(&batch.to_le_bytes()),
                sigs: Vec::new(),
            },
            reads: vec![ProvenRead {
                key: Key::from(key),
                value: Some(Value::from(value)),
                proof: MerkleProof {
                    bucket: Vec::new(),
                    siblings: Vec::new(),
                },
            }],
        })
    }

    #[test]
    fn content_address_pins_values() {
        let a = point(0, 1, "k", "v");
        let b = point(0, 1, "k", "v");
        let c = point(0, 1, "k", "DIFFERENT");
        assert_eq!(a.content_digest(), b.content_digest());
        assert_ne!(a.content_digest(), c.content_digest());
    }

    #[test]
    fn spill_dedups_flips_heads_and_prunes() {
        let mut store: SnapshotStore<Header> = SnapshotStore::new(2);
        let d1 = store.spill(point(0, 1, "a", "1"));
        let dup = store.spill(point(0, 1, "a", "1"));
        assert_eq!(d1, dup);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats.spilled, 1);
        assert_eq!(store.stats.deduped, 1);
        store.spill(point(0, 2, "b", "2"));
        let head = store.head(ClusterId(0)).expect("head exists");
        assert_eq!(head.newest_batch, Some(BatchNum(2)));
        assert_eq!(head.live.len(), 2);
        // Third spill for the cluster prunes the oldest (threshold 2).
        store.spill(point(0, 3, "c", "3"));
        let head = store.head(ClusterId(0)).expect("head exists");
        assert_eq!(head.live.len(), 2);
        assert_eq!(store.stats.pruned, 1);
        assert!(store.get(&d1).is_none(), "oldest object pruned");
        // Heads are per cluster.
        store.spill(point(1, 9, "z", "9"));
        assert_eq!(
            store.head(ClusterId(1)).unwrap().newest_batch,
            Some(BatchNum(9))
        );
        assert_eq!(store.hydration_set().len(), 3);
    }

    #[test]
    fn tampered_object_fails_its_content_address() {
        let mut store: SnapshotStore<Header> = SnapshotStore::new(8);
        let digest = store.spill(point(0, 1, "a", "honest"));
        assert!(store.tamper_with(&digest, |object| {
            if let SnapshotObject::Point(bundle) = object {
                bundle.reads[0].value = Some(Value::from("forged"));
            }
        }));
        let object = store.get(&digest).expect("still stored");
        assert_ne!(object.content_digest(), digest, "bit flip breaks address");
    }

    #[test]
    fn spliced_objects_fail_their_content_addresses() {
        let mut store: SnapshotStore<Header> = SnapshotStore::new(8);
        let da = store.spill(point(0, 1, "a", "1"));
        let db = store.spill(point(0, 2, "b", "2"));
        assert!(store.splice(&da, &db));
        assert_ne!(store.get(&da).unwrap().content_digest(), da);
        assert_ne!(store.get(&db).unwrap().content_digest(), db);
    }

    #[test]
    fn purge_removes_object_and_head_entry() {
        let mut store: SnapshotStore<Header> = SnapshotStore::new(8);
        let digest = store.spill(point(0, 1, "a", "1"));
        store.purge(ClusterId(0), &digest);
        assert!(store.get(&digest).is_none());
        assert!(store.hydration_set().is_empty());
    }
}
