//! The replica-side read pipeline: snapshot source abstraction and the
//! cached assembly of proof-carrying reads.

use transedge_common::{BatchNum, Key, Value};
use transedge_crypto::{MerkleProof, MultiProof, RangeProof, ScanRange};

use crate::cache::{CacheStats, LruCache};
use crate::response::{MultiProofBody, ProvenRead, ScanProof};

/// A provider of snapshot values and proofs — in a replica this is the
/// executor's `VersionedStore` + `VersionedMerkleTree` pair. The trait
/// is the seam that lets the read path live outside the
/// transaction-processing crate.
pub trait SnapshotSource {
    /// Value of `key` as of the consistent cut at the end of `batch`.
    fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value>;

    /// Merkle (non-)inclusion proof for `key` against the root at
    /// `batch`.
    fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof;

    /// Every committed `(key, value)` in a tree-order window at the cut
    /// of `batch`, ascending in tree order (the store's ordered index
    /// makes this `O(log keys + rows)`, not an `O(keys)` cut walk).
    fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)>;

    /// Completeness proof for the window against the root at `batch`.
    fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> RangeProof;

    /// One Merkle multiproof covering every key in `keys` (sorted,
    /// unique) against the root at `batch` — a single deduplicated
    /// sibling set instead of `keys.len()` independent proofs.
    fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> MultiProof;
}

/// Assemble proof-carrying reads for `keys` at `batch`, straight from
/// the source (no caching). This is *the* single implementation of
/// snapshot serving; the node's cached pipeline and the executor's
/// direct path both funnel through it.
pub fn read_snapshot<S: SnapshotSource + ?Sized>(
    src: &S,
    keys: &[Key],
    batch: BatchNum,
) -> Vec<ProvenRead> {
    keys.iter()
        .map(|key| proven_read(src, key, batch))
        .collect()
}

fn proven_read<S: SnapshotSource + ?Sized>(src: &S, key: &Key, batch: BatchNum) -> ProvenRead {
    ProvenRead {
        key: key.clone(),
        value: src.value_at(key, batch),
        proof: src.prove_at(key, batch),
    }
}

/// Assemble a proof-carrying range scan for `range` at `batch`,
/// straight from the source. Like [`read_snapshot`], this is the single
/// implementation of scan serving; the cached pipeline funnels through
/// it.
pub fn scan_snapshot<S: SnapshotSource + ?Sized>(
    src: &S,
    range: &ScanRange,
    batch: BatchNum,
) -> ScanProof {
    ScanProof {
        range: *range,
        rows: src.rows_at(range, batch),
        proof: src.prove_range(range, batch),
    }
}

/// Build a [`MultiProofBody`] for `keys` at `batch`, straight from the
/// source: the keys are sorted and deduplicated, their values read at
/// the cut, and **one** multiproof generated for the whole set. Like
/// [`read_snapshot`], the single implementation the cached pipeline
/// funnels through.
pub fn multi_snapshot<S: SnapshotSource + ?Sized>(
    src: &S,
    keys: &[Key],
    batch: BatchNum,
) -> MultiProofBody {
    let mut sorted: Vec<Key> = keys.to_vec();
    sorted.sort();
    sorted.dedup();
    let values = sorted.iter().map(|k| src.value_at(k, batch)).collect();
    let proof = src.prove_multi(&sorted, batch);
    MultiProofBody::new(sorted, values, proof)
}

/// The serving pipeline a replica (or any node with a
/// [`SnapshotSource`]) runs its read-only traffic through. Proof
/// generation is the expensive part of serving a ROT (`O(depth)`
/// hashing per key), and hot keys are read at the same batch by many
/// clients, so the pipeline memoises `(key, batch) → ProvenRead` in an
/// LRU cache. Entries are immutable — a batch's proof for a key never
/// changes — so the cache needs no invalidation.
#[derive(Clone, Debug)]
pub struct ReadPipeline {
    cache: LruCache<(Key, BatchNum), ProvenRead>,
    /// `(range, batch) → ScanProof` — a scan proof is far more
    /// expensive to build than a point proof (`O(width)` leaf hashes),
    /// and scans are immutable per batch just like point reads, so the
    /// same no-invalidation memoisation applies.
    scans: LruCache<(ScanRange, BatchNum), ScanProof>,
    /// `batch → MultiProofBody`: the **coalescer**. Concurrent point
    /// reads pinned to the same batch merge into one growing superset
    /// body — a later request whose keys are covered is a pure
    /// refcount-bump replay; a request adding keys re-proves the union
    /// once and every subsequent reader shares it. One body per batch
    /// (the union), LRU over batches.
    multis: LruCache<BatchNum, MultiProofBody>,
}

/// Default per-node cache capacity (entries, not bytes): generous for
/// the simulated workloads while keeping worst-case memory modest.
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024;

/// Default scan-proof cache capacity. Scan entries are much larger than
/// point entries (whole windows), so the cap is correspondingly lower.
pub const DEFAULT_SCAN_CACHE_CAPACITY: usize = 512;

/// Default multiproof-coalescer capacity (batches, one union body
/// each).
pub const DEFAULT_MULTI_CACHE_CAPACITY: usize = 256;

/// Largest key set one coalesced multiproof body may cover. Past this,
/// a request is served as its own body instead of growing the union —
/// unbounded unions would make every replay carry the whole hot set.
pub const MAX_COALESCED_KEYS: usize = 64;

impl Default for ReadPipeline {
    fn default() -> Self {
        ReadPipeline::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl ReadPipeline {
    pub fn new(cache_capacity: usize) -> Self {
        ReadPipeline {
            cache: LruCache::new(cache_capacity),
            scans: LruCache::new(DEFAULT_SCAN_CACHE_CAPACITY.min(cache_capacity.max(1))),
            multis: LruCache::new(DEFAULT_MULTI_CACHE_CAPACITY.min(cache_capacity.max(1))),
        }
    }

    /// Serve `keys` at `batch`, consulting the cache first.
    pub fn serve<S: SnapshotSource + ?Sized>(
        &mut self,
        src: &S,
        keys: &[Key],
        batch: BatchNum,
    ) -> Vec<ProvenRead> {
        keys.iter()
            .map(|key| {
                let ck = (key.clone(), batch);
                if let Some(hit) = self.cache.get(&ck) {
                    return hit.clone();
                }
                let read = proven_read(src, key, batch);
                self.cache.insert(ck, read.clone());
                read
            })
            .collect()
    }

    /// Serve a range scan at `batch`, consulting the scan cache first.
    pub fn serve_scan<S: SnapshotSource + ?Sized>(
        &mut self,
        src: &S,
        range: &ScanRange,
        batch: BatchNum,
    ) -> ScanProof {
        let ck = (*range, batch);
        if let Some(hit) = self.scans.get(&ck) {
            return hit.clone();
        }
        let scan = scan_snapshot(src, range, batch);
        self.scans.insert(ck, scan.clone());
        scan
    }

    /// Serve `keys` at `batch` as one multiproof body, coalescing with
    /// concurrent reads at the same batch:
    ///
    /// * the batch's cached union body covers the request → replay it
    ///   (a clone of the body is a refcount bump on its shared wire
    ///   buffer — no proof work, no re-encoding);
    /// * otherwise, if the union of cached and requested keys stays
    ///   within [`MAX_COALESCED_KEYS`], prove the union once, cache it,
    ///   and serve it — the superset answers both this request and
    ///   every retroactively-coalesced neighbour;
    /// * past the cap, prove exactly the requested set and leave the
    ///   cached union alone.
    pub fn serve_multi<S: SnapshotSource + ?Sized>(
        &mut self,
        src: &S,
        keys: &[Key],
        batch: BatchNum,
    ) -> MultiProofBody {
        if self.multis.peek(&batch).is_some_and(|b| b.covers(keys)) {
            return self.multis.get(&batch).expect("just peeked").clone();
        }
        // A body that doesn't cover the request is a miss, not a hit.
        self.multis.stats.misses += 1;
        let union: Vec<Key> = match self.multis.peek(&batch) {
            Some(body) if body.keys.len() + keys.len() <= MAX_COALESCED_KEYS => {
                body.keys.iter().chain(keys.iter()).cloned().collect()
            }
            _ => keys.to_vec(),
        };
        let body = multi_snapshot(src, &union, batch);
        if body.keys.len() <= MAX_COALESCED_KEYS {
            self.multis.insert(batch, body.clone());
        }
        body
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Multiproof-coalescer counters (a hit is a covered replay).
    pub fn multi_stats(&self) -> CacheStats {
        self.multis.stats
    }

    /// Scan-proof cache counters.
    pub fn scan_stats(&self) -> CacheStats {
        self.scans.stats
    }

    /// Entries currently cached.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    use transedge_crypto::merkle::{value_digest, verify_proof, Verified};
    use transedge_crypto::VersionedMerkleTree;
    use transedge_storage::VersionedStore;

    /// A real store+tree source, with a probe counting proof requests.
    struct TestSource {
        store: VersionedStore,
        tree: VersionedMerkleTree,
        proofs_generated: AtomicU64,
    }

    impl TestSource {
        fn with_batches(batches: &[&[(u32, &str)]]) -> Self {
            let mut store = VersionedStore::new();
            let mut tree = VersionedMerkleTree::with_depth(8);
            for (i, writes) in batches.iter().enumerate() {
                let mut updates = Vec::new();
                for (k, v) in writes.iter() {
                    let key = Key::from_u32(*k);
                    let value = Value::from(*v);
                    store.write(key.clone(), value.clone(), BatchNum(i as u64));
                    updates.push((Key::from_u32(*k), value_digest(&value)));
                }
                tree.apply_batch(i as u64, updates.iter().map(|(k, d)| (k, *d)));
            }
            TestSource {
                store,
                tree,
                proofs_generated: AtomicU64::new(0),
            }
        }
    }

    impl SnapshotSource for TestSource {
        fn value_at(&self, key: &Key, batch: BatchNum) -> Option<Value> {
            self.store.read_at(key, batch).map(|v| v.value.clone())
        }

        fn prove_at(&self, key: &Key, batch: BatchNum) -> MerkleProof {
            self.proofs_generated.fetch_add(1, Ordering::Relaxed);
            self.tree.prove_at(key, batch.0)
        }

        fn rows_at(&self, range: &ScanRange, batch: BatchNum) -> Vec<(Key, Value)> {
            self.store
                .range_at(range.digest_bounds(self.tree.depth()), batch)
                .map(|(k, v)| (k.clone(), v.value.clone()))
                .collect()
        }

        fn prove_range(&self, range: &ScanRange, batch: BatchNum) -> RangeProof {
            self.proofs_generated.fetch_add(1, Ordering::Relaxed);
            self.tree.prove_range(range, batch.0)
        }

        fn prove_multi(&self, keys: &[Key], batch: BatchNum) -> MultiProof {
            self.proofs_generated.fetch_add(1, Ordering::Relaxed);
            self.tree.prove_multi(keys, batch.0)
        }
    }

    #[test]
    fn read_snapshot_serves_correct_versions_with_valid_proofs() {
        let src = TestSource::with_batches(&[&[(1, "a"), (2, "b")], &[(1, "a2")]]);
        let keys = [Key::from_u32(1), Key::from_u32(2), Key::from_u32(9)];
        for batch in [0u64, 1] {
            let reads = read_snapshot(&src, &keys, BatchNum(batch));
            let root = src.tree.root_at(batch);
            let by_key: HashMap<&Key, &ProvenRead> = reads.iter().map(|r| (&r.key, r)).collect();
            // Key 1: overwritten in batch 1.
            let want1 = if batch == 0 { "a" } else { "a2" };
            let r1 = by_key[&Key::from_u32(1)];
            assert_eq!(r1.value, Some(Value::from(want1)));
            assert_eq!(
                verify_proof(&root, 8, &r1.key, &r1.proof).unwrap(),
                Verified::Present(value_digest(&Value::from(want1)))
            );
            // Key 9: absent, with a verifying non-inclusion proof.
            let r9 = by_key[&Key::from_u32(9)];
            assert_eq!(r9.value, None);
            assert_eq!(
                verify_proof(&root, 8, &r9.key, &r9.proof).unwrap(),
                Verified::Absent
            );
        }
    }

    #[test]
    fn pipeline_caches_per_key_and_batch() {
        let src = TestSource::with_batches(&[&[(1, "a"), (2, "b")]]);
        let mut pipeline = ReadPipeline::new(1024);
        let keys = [Key::from_u32(1), Key::from_u32(2)];
        let cold = pipeline.serve(&src, &keys, BatchNum(0));
        assert_eq!(src.proofs_generated.load(Ordering::Relaxed), 2);
        assert_eq!(pipeline.stats().misses, 2);
        assert_eq!(pipeline.stats().hits, 0);
        // Warm pass: no new proof generation.
        let warm = pipeline.serve(&src, &keys, BatchNum(0));
        assert_eq!(src.proofs_generated.load(Ordering::Relaxed), 2);
        assert_eq!(pipeline.stats().hits, 2);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.value, w.value);
            assert_eq!(c.proof, w.proof);
        }
    }

    #[test]
    fn pipeline_distinguishes_batches() {
        let src = TestSource::with_batches(&[&[(1, "a")], &[(1, "a2")]]);
        let mut pipeline = ReadPipeline::new(1024);
        let keys = [Key::from_u32(1)];
        let at0 = pipeline.serve(&src, &keys, BatchNum(0));
        let at1 = pipeline.serve(&src, &keys, BatchNum(1));
        assert_eq!(at0[0].value, Some(Value::from("a")));
        assert_eq!(at1[0].value, Some(Value::from("a2")));
        // Different (key, batch) keys: both were misses.
        assert_eq!(pipeline.stats().misses, 2);
    }

    #[test]
    fn serve_scan_memoises_per_range_and_batch() {
        use transedge_crypto::verify_range_proof;
        let src = TestSource::with_batches(&[&[(1, "a"), (2, "b"), (3, "c")], &[(2, "b2")]]);
        let mut pipeline = ReadPipeline::new(1024);
        let range = ScanRange::new(0, 255);
        let cold = pipeline.serve_scan(&src, &range, BatchNum(1));
        let proofs_after_cold = src.proofs_generated.load(Ordering::Relaxed);
        assert_eq!(cold.rows.len(), 3);
        assert!(cold
            .rows
            .iter()
            .any(|(k, v)| k == &Key::from_u32(2) && v == &Value::from("b2")));
        // Rows and proof agree and verify against the batch-1 root.
        let entries = verify_range_proof(&src.tree.root_at(1), 8, &range, &cold.proof).unwrap();
        assert_eq!(entries.len(), cold.rows.len());
        // Warm pass: no new proof generation, same answer.
        let warm = pipeline.serve_scan(&src, &range, BatchNum(1));
        assert_eq!(
            src.proofs_generated.load(Ordering::Relaxed),
            proofs_after_cold
        );
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(pipeline.scan_stats().hits, 1);
        // A different batch is a different cache entry.
        let at0 = pipeline.serve_scan(&src, &range, BatchNum(0));
        assert!(at0
            .rows
            .iter()
            .any(|(k, v)| k == &Key::from_u32(2) && v == &Value::from("b")));
        assert_eq!(pipeline.scan_stats().misses, 2);
    }

    #[test]
    fn serve_multi_coalesces_concurrent_reads_per_batch() {
        let src = TestSource::with_batches(&[&[(1, "a"), (2, "b"), (3, "c"), (4, "d")]]);
        let mut pipeline = ReadPipeline::new(1024);
        // First reader proves {1, 2}: one multiproof, one proof call.
        let a = pipeline.serve_multi(&src, &[Key::from_u32(1), Key::from_u32(2)], BatchNum(0));
        assert_eq!(src.proofs_generated.load(Ordering::Relaxed), 1);
        assert_eq!(a.keys.len(), 2);
        // Second reader adds {3}: union {1,2,3} proven once.
        let b = pipeline.serve_multi(&src, &[Key::from_u32(3)], BatchNum(0));
        assert_eq!(src.proofs_generated.load(Ordering::Relaxed), 2);
        assert_eq!(b.keys.len(), 3);
        // Third reader asks a covered subset: zero-copy replay — the
        // same wire allocation, no proof work.
        let c = pipeline.serve_multi(&src, &[Key::from_u32(2), Key::from_u32(3)], BatchNum(0));
        assert_eq!(src.proofs_generated.load(Ordering::Relaxed), 2);
        assert_eq!(c.wire_bytes().as_ptr(), b.wire_bytes().as_ptr());
        assert_eq!(pipeline.multi_stats().hits, 1);
        assert_eq!(pipeline.multi_stats().misses, 2);
        // The body verifies and covers exactly the union.
        let verdicts =
            transedge_crypto::verify_multi_proof(&src.tree.root_at(0), 8, &c.keys, &c.proof)
                .unwrap();
        assert_eq!(verdicts.len(), 3);
        assert_eq!(c.encoded_len(), c.wire_bytes().len());
    }

    #[test]
    fn serve_multi_caps_the_union() {
        let entries: Vec<(u32, &str)> = (0..200u32).map(|i| (i, "v")).collect();
        let src = TestSource::with_batches(&[&entries]);
        let mut pipeline = ReadPipeline::new(1024);
        let small: Vec<Key> = (0..4).map(Key::from_u32).collect();
        pipeline.serve_multi(&src, &small, BatchNum(0));
        // A huge request must not displace the cached union with an
        // unbounded body.
        let huge: Vec<Key> = (0..(MAX_COALESCED_KEYS as u32 + 8))
            .map(Key::from_u32)
            .collect();
        let body = pipeline.serve_multi(&src, &huge, BatchNum(0));
        assert_eq!(body.keys.len(), huge.len());
        // The cached body is still the small union.
        let again = pipeline.serve_multi(&src, &small, BatchNum(0));
        assert_eq!(again.keys.len(), 4);
    }

    #[test]
    fn pipeline_eviction_under_pressure() {
        let src = TestSource::with_batches(&[&[(1, "a"), (2, "b"), (3, "c"), (4, "d")]]);
        let mut pipeline = ReadPipeline::new(2);
        let all: Vec<Key> = (1..=4).map(Key::from_u32).collect();
        pipeline.serve(&src, &all, BatchNum(0));
        assert_eq!(pipeline.cached_entries(), 2);
        assert_eq!(pipeline.stats().evictions, 2);
    }
}
