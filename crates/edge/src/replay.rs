//! Store-free edge serving: cache certified response fragments from
//! upstream replicas and replay them to clients.
//!
//! An edge replay node is the cheapest possible read scaler: it holds
//! no partition state, no Merkle tree, and no signing keys — only
//! [`ProofBundle`] fragments it saw go past. Because every fragment is
//! anchored in an `f+1` certificate and per-key proofs, replaying one
//! can serve a later client *without any trust in the edge node*: the
//! client's [`crate::verifier::ReadVerifier`] re-checks everything.
//! This is WedgeChain's lazy-trust pattern applied to TransEdge's ROT
//! protocol.

use std::collections::{BTreeMap, HashMap, VecDeque};

use transedge_common::{BatchNum, ClusterId, Epoch, Key, SimTime};
use transedge_consensus::Certificate;
use transedge_crypto::ScanRange;

use crate::cache::{CacheStats, LruCache};
use crate::response::{
    BatchCommitment, CertifiedDelta, MultiProofBody, MultiProofBundle, ProofBundle, ProvenRead,
    ScanBundle, ScanProof,
};

/// Counters for the replay path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Bundles absorbed from upstream.
    pub admitted: u64,
    /// Requests answered entirely from cache.
    pub replayed: u64,
    /// Requests that could not be answered (missing batch or keys).
    pub passes: u64,
    /// Requests partially covered from cache (the rest is fetched
    /// upstream, pinned at the anchor batch).
    pub partial: u64,
    /// Individual fragments served from cache, across full replays and
    /// partial assemblies.
    pub fragments_replayed: u64,
    /// Scan proofs absorbed from upstream.
    pub scans_admitted: u64,
    /// Scan requests answered from cache.
    pub scans_replayed: u64,
    /// Scan replays answered by a cached *wider* window covering the
    /// request (overlap-aware reuse; the client filters to its range).
    pub scans_covered_by_wider: u64,
    /// Scan requests with no usable cached window.
    pub scan_passes: u64,
    /// Multiproof bodies absorbed from upstream.
    pub multis_admitted: u64,
    /// Multiproof requests answered from cache (a body covering the
    /// requested keys replayed as-is — a refcount bump on its shared
    /// wire buffer).
    pub multis_replayed: u64,
    /// Multi replays answered by a cached *superset* body (the client
    /// verifies the proven set and picks out its keys).
    pub multis_covered_by_superset: u64,
    /// Multiproof requests with no usable cached body.
    pub multi_passes: u64,
    /// Certified deltas applied to the feed window (already verified by
    /// the caller).
    pub deltas_applied: u64,
    /// Feed windows reset because a delta arrived past a gap (the
    /// contiguity the freshness certificate needs was broken).
    pub feed_resets: u64,
    /// Cached read fragments dropped by push invalidation: a delta
    /// proved their key changed after the batch they snapshot.
    pub fragments_invalidated: u64,
    /// Freshness feeds attached to served responses.
    pub freshness_attached: u64,
    /// Freshness requests refused: the feed could not chain from the
    /// served batch, or a queried key changed inside the window.
    pub freshness_refused: u64,
    /// Cached entries (fragments, scan windows, multiproof bodies)
    /// dropped because their batch aged past `max_batches` — *capacity*
    /// eviction, as opposed to `fragments_invalidated` (a delta proved
    /// the entry superseded). The persistence plane's spill accounting
    /// rides on this split: an evicted entry is still durable on disk,
    /// an invalidated one is provably dead everywhere.
    pub evicted_entries: u64,
}

impl transedge_obs::RegisterMetrics for ReplayStats {
    fn register_metrics(&self, scope: &str, reg: &mut transedge_obs::MetricRegistry) {
        reg.counter(scope, "replay.admitted", self.admitted);
        reg.counter(scope, "replay.replayed", self.replayed);
        reg.counter(scope, "replay.passes", self.passes);
        reg.counter(scope, "replay.partial", self.partial);
        reg.counter(scope, "replay.fragments_replayed", self.fragments_replayed);
        reg.counter(scope, "replay.scans_admitted", self.scans_admitted);
        reg.counter(scope, "replay.scans_replayed", self.scans_replayed);
        reg.counter(
            scope,
            "replay.scans_covered_by_wider",
            self.scans_covered_by_wider,
        );
        reg.counter(scope, "replay.scan_passes", self.scan_passes);
        reg.counter(scope, "replay.multis_admitted", self.multis_admitted);
        reg.counter(scope, "replay.multis_replayed", self.multis_replayed);
        reg.counter(
            scope,
            "replay.multis_covered_by_superset",
            self.multis_covered_by_superset,
        );
        reg.counter(scope, "replay.multi_passes", self.multi_passes);
        reg.counter(scope, "replay.deltas_applied", self.deltas_applied);
        reg.counter(scope, "replay.feed_resets", self.feed_resets);
        reg.counter(
            scope,
            "replay.fragments_invalidated",
            self.fragments_invalidated,
        );
        reg.counter(scope, "replay.freshness_attached", self.freshness_attached);
        reg.counter(scope, "replay.freshness_refused", self.freshness_refused);
        reg.counter(scope, "replay.evicted_entries", self.evicted_entries);
    }
}

impl ReplayStats {
    /// Sum `other` into `self` (shard aggregation).
    pub fn absorb(&mut self, other: &ReplayStats) {
        self.admitted += other.admitted;
        self.replayed += other.replayed;
        self.passes += other.passes;
        self.partial += other.partial;
        self.fragments_replayed += other.fragments_replayed;
        self.scans_admitted += other.scans_admitted;
        self.scans_replayed += other.scans_replayed;
        self.scans_covered_by_wider += other.scans_covered_by_wider;
        self.scan_passes += other.scan_passes;
        self.multis_admitted += other.multis_admitted;
        self.multis_replayed += other.multis_replayed;
        self.multis_covered_by_superset += other.multis_covered_by_superset;
        self.multi_passes += other.multi_passes;
        self.deltas_applied += other.deltas_applied;
        self.feed_resets += other.feed_resets;
        self.fragments_invalidated += other.fragments_invalidated;
        self.freshness_attached += other.freshness_attached;
        self.freshness_refused += other.freshness_refused;
        self.evicted_entries += other.evicted_entries;
    }
}

/// What the cache can do for a request, given the LCE and freshness
/// floors. Produced by [`ReplayCache::assemble`].
#[derive(Clone, Debug)]
pub enum Assembly<H> {
    /// Every requested key is cached at one admitted batch: a complete
    /// bundle, the classic replay.
    Full(ProofBundle<H>),
    /// Some keys are cached at the anchor batch; `missing` must be
    /// fetched upstream **pinned at `cached.batch()`** so the final
    /// response remains one consistent snapshot cut. Mixing batches
    /// within a partition would permit torn reads the client cannot
    /// detect (the CD/LCE machinery only tracks cross-partition
    /// dependencies), so assembly never does it.
    Partial {
        cached: ProofBundle<H>,
        missing: Vec<Key>,
    },
    /// Nothing usable is cached: forward the whole request upstream.
    Miss,
}

/// Cached scan windows per batch (few per batch, matched by coverage —
/// a linear scan of a short list beats an index here).
const MAX_SCANS_PER_BATCH: usize = 32;

/// Cached multiproof bodies per batch — the coalescer upstream keeps
/// bodies few and wide, so a short list suffices here too.
const MAX_MULTIS_PER_BATCH: usize = 16;

/// Deltas retained in the feed window. The window only has to span the
/// gap between an edge's oldest *servable* snapshot and the feed head,
/// so a small multiple of `max_batches` suffices.
pub const MAX_FEED_DELTAS: usize = 64;

/// The cache an edge replay node runs on.
#[derive(Clone, Debug)]
pub struct ReplayCache<H> {
    /// Certified headers by batch, newest retained up to `max_batches`.
    commitments: BTreeMap<u64, (H, Certificate)>,
    /// Per-`(key, batch)` verified-fragment cache.
    reads: LruCache<(Key, u64), ProvenRead>,
    /// Per-`(range, batch)` scan-proof cache: batch → cached windows,
    /// oldest first. A window serves any request it *covers* (the
    /// client verifies the proven window and filters to its own range),
    /// so wide windows absorbed once keep serving narrower scans.
    scans: BTreeMap<u64, Vec<(ScanRange, ScanProof)>>,
    /// Per-batch multiproof bodies: batch → cached bodies, oldest
    /// first. A body serves any request whose keys it covers, so a wide
    /// coalesced body absorbed once keeps serving narrower reads — the
    /// multiproof analogue of covering scan windows. Bodies share their
    /// wire encoding, so replaying one is a refcount bump.
    multis: BTreeMap<u64, Vec<MultiProofBody>>,
    /// The certified-delta feed window: a *contiguous* run of verified
    /// deltas ending at the feed head, oldest first. Contiguity is the
    /// invariant everything rests on — a freshness certificate is a
    /// gap-free chain, so a delta arriving past a gap resets the
    /// window rather than splicing it.
    feed: VecDeque<CertifiedDelta<H>>,
    max_batches: usize,
    pub stats: ReplayStats,
}

impl<H: BatchCommitment + Clone> ReplayCache<H> {
    pub fn new(read_capacity: usize, max_batches: usize) -> Self {
        ReplayCache {
            commitments: BTreeMap::new(),
            reads: LruCache::new(read_capacity),
            scans: BTreeMap::new(),
            multis: BTreeMap::new(),
            feed: VecDeque::new(),
            max_batches: max_batches.max(1),
            stats: ReplayStats::default(),
        }
    }

    /// Absorb an upstream response: remember the certified header and
    /// every per-key fragment.
    pub fn admit(&mut self, bundle: &ProofBundle<H>) {
        let batch = bundle.commitment.batch();
        self.commitments
            .insert(batch.0, (bundle.commitment.clone(), bundle.cert.clone()));
        // Fragments go in before the eviction pass so that a bundle too
        // old to survive it (a late upstream response) has its
        // fragments swept with its commitment rather than stranded.
        for read in &bundle.reads {
            self.reads.insert((read.key.clone(), batch.0), read.clone());
        }
        self.evict_to_cap();
        self.stats.admitted += 1;
    }

    /// Drop the oldest commitments past `max_batches`, then sweep
    /// fragments and scan windows of evicted batches — they are
    /// unreachable (replay only scans live commitments), so keeping
    /// them would just occupy cache slots.
    fn evict_to_cap(&mut self) {
        let mut evicted_any = false;
        while self.commitments.len() > self.max_batches {
            let (&oldest, _) = self.commitments.iter().next().expect("non-empty");
            self.commitments.remove(&oldest);
            evicted_any = true;
        }
        if evicted_any {
            let before = self.reads.len() + self.scan_window_count() + self.multi_body_count();
            let commitments = &self.commitments;
            self.reads.retain(|(_, b), _| commitments.contains_key(b));
            self.scans.retain(|b, _| commitments.contains_key(b));
            self.multis.retain(|b, _| commitments.contains_key(b));
            let after = self.reads.len() + self.scan_window_count() + self.multi_body_count();
            self.stats.evicted_entries += (before - after) as u64;
        }
    }

    /// Absorb an upstream scan response: remember the certified header
    /// and the proof-carrying window. Windows already covered by a
    /// cached wider window at the same batch are skipped; a new wider
    /// window displaces the narrower ones it covers.
    pub fn admit_scan(&mut self, bundle: &ScanBundle<H>) {
        // Only complete windows are replayable: a prefix-resume answer
        // carries the proof of the whole window but rows for its fresh
        // tail only — caching it would make every later replay fail the
        // client's rows-versus-entries count check. The proof commits
        // to its row count, so the mismatch is detectable locally.
        let proven_rows: usize = bundle
            .scan
            .proof
            .occupied
            .iter()
            .map(|(_, entries)| entries.len())
            .sum();
        if bundle.scan.rows.len() != proven_rows {
            return;
        }
        let batch = bundle.commitment.batch();
        self.commitments
            .insert(batch.0, (bundle.commitment.clone(), bundle.cert.clone()));
        let windows = self.scans.entry(batch.0).or_default();
        if !windows
            .iter()
            .any(|(cached, _)| cached.covers(&bundle.scan.range))
        {
            windows.retain(|(cached, _)| !bundle.scan.range.covers(cached));
            if windows.len() >= MAX_SCANS_PER_BATCH {
                windows.remove(0);
            }
            windows.push((bundle.scan.range, bundle.scan.clone()));
        }
        self.evict_to_cap();
        self.stats.scans_admitted += 1;
    }

    /// Try to answer a scan for `range` from cache: the newest admitted
    /// batch passing the LCE and timestamp floors holding a cached
    /// window that **covers** `range`. The replayed bundle carries the
    /// cached (possibly wider) window — clients verify the proven
    /// window's completeness and filter rows down to what they asked
    /// for, so covering reuse costs bandwidth, never correctness.
    pub fn replay_scan(
        &mut self,
        range: &ScanRange,
        min_lce: Epoch,
        min_timestamp: SimTime,
    ) -> Option<ScanBundle<H>> {
        for batch in self.passing_batches(min_lce, min_timestamp) {
            let Some(windows) = self.scans.get(&batch) else {
                continue;
            };
            // Prefer the tightest covering window (least excess rows).
            let Some((cached_range, scan)) = windows
                .iter()
                .filter(|(cached, _)| cached.covers(range))
                .min_by_key(|(cached, _)| cached.width())
            else {
                continue;
            };
            self.stats.scans_replayed += 1;
            if cached_range != range {
                self.stats.scans_covered_by_wider += 1;
            }
            let (commitment, cert) = self.commitments[&batch].clone();
            return Some(ScanBundle {
                commitment,
                cert,
                scan: scan.clone(),
            });
        }
        self.stats.scan_passes += 1;
        None
    }

    /// Try to answer a scan for `range` **pinned at exactly `batch`**
    /// (a page continuation or an [`crate::SnapshotPolicy::AtBatch`]
    /// query): only a window cached at that batch that covers the
    /// request may serve — no newer batch is an acceptable substitute,
    /// because the client's verifier rejects any other batch as a
    /// snapshot-pin mismatch.
    pub fn replay_scan_at(&mut self, range: &ScanRange, batch: BatchNum) -> Option<ScanBundle<H>> {
        let covering = self.scans.get(&batch.0).and_then(|windows| {
            windows
                .iter()
                .filter(|(cached, _)| cached.covers(range))
                .min_by_key(|(cached, _)| cached.width())
                .cloned()
        });
        let Some((cached_range, scan)) = covering else {
            self.stats.scan_passes += 1;
            return None;
        };
        self.stats.scans_replayed += 1;
        if cached_range != *range {
            self.stats.scans_covered_by_wider += 1;
        }
        let (commitment, cert) = self.commitments[&batch.0].clone();
        Some(ScanBundle {
            commitment,
            cert,
            scan,
        })
    }

    /// Absorb an upstream multiproof response: remember the certified
    /// header and the body. Bodies whose key set is already covered by
    /// a cached body at the same batch are skipped; a new wider body
    /// displaces the subsets it covers — mirroring the covering-window
    /// rules of [`ReplayCache::admit_scan`]. Admission clones the body,
    /// which shares (not copies) its wire encoding.
    pub fn admit_multi(&mut self, bundle: &MultiProofBundle<H>) {
        let batch = bundle.commitment.batch();
        self.commitments
            .insert(batch.0, (bundle.commitment.clone(), bundle.cert.clone()));
        let bodies = self.multis.entry(batch.0).or_default();
        if !bodies.iter().any(|b| b.covers(&bundle.body.keys)) {
            bodies.retain(|b| !bundle.body.covers(&b.keys));
            if bodies.len() >= MAX_MULTIS_PER_BATCH {
                bodies.remove(0);
            }
            bodies.push(bundle.body.clone());
        }
        self.evict_to_cap();
        self.stats.multis_admitted += 1;
    }

    /// Try to answer a batched read for `keys` from cache: the newest
    /// admitted batch passing the LCE and timestamp floors holding a
    /// body that **covers** every requested key. The replayed bundle
    /// carries the cached (possibly superset) body — the client
    /// verifies the proven set and picks out its keys, so superset
    /// reuse costs bandwidth, never correctness. Replaying shares the
    /// body's wire buffer; no proof or encoding work happens here.
    pub fn replay_multi(
        &mut self,
        keys: &[Key],
        min_lce: Epoch,
        min_timestamp: SimTime,
    ) -> Option<MultiProofBundle<H>> {
        for batch in self.passing_batches(min_lce, min_timestamp) {
            let Some(bundle) = self.multi_at(batch, keys) else {
                continue;
            };
            return Some(bundle);
        }
        self.stats.multi_passes += 1;
        None
    }

    /// [`ReplayCache::replay_multi`] **pinned at exactly `batch`** (an
    /// [`crate::SnapshotPolicy::AtBatch`] query): no other batch is an
    /// acceptable substitute.
    pub fn replay_multi_at(
        &mut self,
        keys: &[Key],
        batch: BatchNum,
    ) -> Option<MultiProofBundle<H>> {
        let bundle = self.multi_at(batch.0, keys);
        if bundle.is_none() {
            self.stats.multi_passes += 1;
        }
        bundle
    }

    /// The tightest cached body at `batch` covering `keys`, as a full
    /// bundle; bumps the replay counters on success.
    fn multi_at(&mut self, batch: u64, keys: &[Key]) -> Option<MultiProofBundle<H>> {
        let body = self
            .multis
            .get(&batch)?
            .iter()
            .filter(|b| b.covers(keys))
            .min_by_key(|b| b.keys.len())?
            .clone();
        self.stats.multis_replayed += 1;
        if body.keys.len() != keys.len() {
            self.stats.multis_covered_by_superset += 1;
        }
        let (commitment, cert) = self.commitments[&batch].clone();
        Some(MultiProofBundle {
            commitment,
            cert,
            body,
        })
    }

    /// Cached multiproof bodies across live batches (diagnostics).
    pub fn multi_body_count(&self) -> usize {
        self.multis.values().map(|b| b.len()).sum()
    }

    /// Cached scan windows across live batches (diagnostics).
    pub fn scan_window_count(&self) -> usize {
        self.scans.values().map(|w| w.len()).sum()
    }

    /// Newest admitted batch, if any.
    pub fn latest_batch(&self) -> Option<BatchNum> {
        self.commitments.keys().next_back().map(|b| BatchNum(*b))
    }

    /// Apply a certified delta the caller has **already verified**
    /// (edge nodes run [`crate::ReadVerifier::verify_delta`] before
    /// anything reaches the cache — nothing pushed is trusted until it
    /// recomputes under a replica certificate):
    ///
    /// * head + 1 → extend the window and *push-invalidate*: cached
    ///   read fragments for the changed keys at older batches are now
    ///   provably superseded, so they are dropped instead of aging out;
    /// * at or before the head → duplicate delivery, ignored;
    /// * past a gap → the window restarts at the delta (a freshness
    ///   certificate must be gap-free, so the old run is useless).
    pub fn apply_delta(&mut self, delta: CertifiedDelta<H>) {
        let batch = delta.batch();
        if let Some(head) = self.feed_head() {
            if batch.0 <= head.0 {
                return;
            }
            if batch.0 > head.0 + 1 {
                self.feed.clear();
                self.stats.feed_resets += 1;
            }
        }
        let changed = &delta.changed;
        let before = self.reads.len();
        self.reads
            .retain(|(key, b), _| *b >= batch.0 || changed.binary_search(key).is_err());
        self.stats.fragments_invalidated += (before - self.reads.len()) as u64;
        self.feed.push_back(delta);
        while self.feed.len() > MAX_FEED_DELTAS {
            self.feed.pop_front();
        }
        self.stats.deltas_applied += 1;
    }

    /// The newest batch the feed window reaches, if any.
    pub fn feed_head(&self) -> Option<BatchNum> {
        self.feed.back().map(|d| d.batch())
    }

    /// Deltas currently held in the feed window (diagnostics).
    pub fn feed_len(&self) -> usize {
        self.feed.len()
    }

    /// The freshness certificate for a response served at `from`: the
    /// feed tail `(from, head]`, provided the window chains from the
    /// served batch without a gap and **no queried key changed inside
    /// it** — otherwise the served values are not the head values and
    /// attaching the feed would be the exact lie
    /// [`crate::ReadRejection::BadDelta`] exists to catch. `Some(vec![])`
    /// means the served batch *is* the head.
    pub fn freshness_since(
        &mut self,
        from: BatchNum,
        keys: &[Key],
    ) -> Option<Vec<CertifiedDelta<H>>> {
        let head = self.feed_head();
        if head == Some(from) {
            self.stats.freshness_attached += 1;
            return Some(Vec::new());
        }
        let Some(first) = self.feed.front().map(|d| d.batch()) else {
            self.stats.freshness_refused += 1;
            return None;
        };
        if from.0 + 1 < first.0 || head.is_none_or(|h| h.0 <= from.0) {
            self.stats.freshness_refused += 1;
            return None;
        }
        let tail: Vec<CertifiedDelta<H>> = self
            .feed
            .iter()
            .filter(|d| d.batch().0 > from.0)
            .cloned()
            .collect();
        if tail.iter().any(|d| d.touches(keys)) {
            self.stats.freshness_refused += 1;
            return None;
        }
        self.stats.freshness_attached += 1;
        Some(tail)
    }

    /// Try to answer `keys` wholly from cache: the newest admitted
    /// batch whose LCE is at least `min_lce` and whose batch timestamp
    /// is at least `min_timestamp`, with a cached fragment for every
    /// requested key. Returns `None` (a "pass" — the caller forwards
    /// upstream, refreshing the cache) otherwise.
    ///
    /// The timestamp floor is what keeps an honest edge from wedging:
    /// without it, a hot key set would be replayed from the same aging
    /// batch forever, and once that batch fell out of the client's
    /// freshness window every reply would be rejected — while the cache
    /// never refreshed, because every request kept hitting. Pass
    /// [`SimTime::ZERO`] to disable the floor.
    ///
    /// This is the whole-bundle-only convenience over the same
    /// floor/coverage scan [`ReplayCache::assemble`] runs; serving
    /// nodes use `assemble`, which also handles partial coverage.
    pub fn replay(
        &mut self,
        keys: &[Key],
        min_lce: Epoch,
        min_timestamp: SimTime,
    ) -> Option<ProofBundle<H>> {
        for batch in self.passing_batches(min_lce, min_timestamp) {
            if self.coverage_at(batch, keys) != keys.len() {
                continue;
            }
            self.stats.replayed += 1;
            return Some(self.bundle_at(batch, keys));
        }
        self.stats.passes += 1;
        None
    }

    /// Serve as much of `keys` as the cache allows under the same
    /// floors as [`ReplayCache::replay`]:
    ///
    /// * a batch covering *every* key → [`Assembly::Full`] (the newest
    ///   such batch wins, exactly like `replay`);
    /// * otherwise the batch covering the *most* keys (newest wins
    ///   ties) becomes the anchor → [`Assembly::Partial`] with the
    ///   covered fragments and the keys the caller must fetch upstream
    ///   **at that same batch**;
    /// * no batch covering anything → [`Assembly::Miss`].
    ///
    /// Because the floors apply to the anchor, a hot key whose
    /// fragments have aged past `min_timestamp` (or a round-2 floor the
    /// cached batches cannot reach) simply drops out of the coverage
    /// count: only the stale/missing keys are re-fetched, not the whole
    /// bundle. Round-2 fetches (`min_lce` set) are likewise satisfied
    /// from *newer* admitted batches whenever one covers the keys.
    pub fn assemble(
        &mut self,
        keys: &[Key],
        min_lce: Epoch,
        min_timestamp: SimTime,
    ) -> Assembly<H> {
        let mut best: Option<(u64, usize)> = None;
        for batch in self.passing_batches(min_lce, min_timestamp) {
            let covered = self.coverage_at(batch, keys);
            if covered == keys.len() {
                self.stats.replayed += 1;
                return Assembly::Full(self.bundle_at(batch, keys));
            }
            // Scanning newest-first, so strict `>` keeps the newest
            // batch among equal coverage.
            if covered > 0 && best.is_none_or(|(_, c)| covered > c) {
                best = Some((batch, covered));
            }
        }
        match best {
            Some((anchor, _)) => {
                let covered: Vec<Key> = keys
                    .iter()
                    .filter(|k| self.reads.contains(&((*k).clone(), anchor)))
                    .cloned()
                    .collect();
                let missing: Vec<Key> = keys
                    .iter()
                    .filter(|k| !self.reads.contains(&((*k).clone(), anchor)))
                    .cloned()
                    .collect();
                self.stats.partial += 1;
                Assembly::Partial {
                    cached: self.bundle_at(anchor, &covered),
                    missing,
                }
            }
            None => {
                self.stats.passes += 1;
                Assembly::Miss
            }
        }
    }

    /// Admitted batches passing the LCE and timestamp floors, newest
    /// first. Both LCE and leader timestamps are monotone over batches,
    /// so the scan stops at the first batch below either floor —
    /// nothing older can satisfy them.
    fn passing_batches(&self, min_lce: Epoch, min_timestamp: SimTime) -> Vec<u64> {
        self.commitments
            .iter()
            .rev()
            .take_while(|(_, (c, _))| c.lce() >= min_lce && c.timestamp() >= min_timestamp)
            .map(|(b, _)| *b)
            .collect()
    }

    /// How many of `keys` have a cached fragment at `batch`.
    fn coverage_at(&self, batch: u64, keys: &[Key]) -> usize {
        keys.iter()
            .filter(|k| self.reads.contains(&((*k).clone(), batch)))
            .count()
    }

    /// Materialise a bundle for `keys` at `batch`; every fragment must
    /// be cached (callers check coverage first).
    fn bundle_at(&mut self, batch: u64, keys: &[Key]) -> ProofBundle<H> {
        let (commitment, cert) = self.commitments[&batch].clone();
        let reads: Vec<ProvenRead> = keys
            .iter()
            .map(|k| {
                self.reads
                    .get(&(k.clone(), batch))
                    .expect("coverage checked by caller")
                    .clone()
            })
            .collect();
        self.stats.fragments_replayed += reads.len() as u64;
        ProofBundle {
            commitment,
            cert,
            reads,
        }
    }

    /// Fragment-cache counters (hits count replayed fragments).
    pub fn read_stats(&self) -> CacheStats {
        self.reads.stats
    }

    /// Per-key fragments currently cached (only fragments of live
    /// commitments are retained).
    pub fn fragment_count(&self) -> usize {
        self.reads.len()
    }
}

/// Shards an edge's per-partition replay caches by cluster hash.
///
/// An edge node fronting many partitions used to keep one flat
/// partition → cache map; every request touched the same structure. In
/// a real deployment that map is a lock, and the read path a contended
/// hot path — so the caches are split into [`ShardedReplayCache::shard_count`]
/// independent shards, a partition's cache living in the shard its
/// cluster id hashes to. Requests for different shards never touch the
/// same state; within a shard, partitions still get fully separate
/// [`ReplayCache`]s (batch numbers are per-partition — sharing one
/// cache across partitions would collide their batch spaces).
#[derive(Clone, Debug)]
pub struct ShardedReplayCache<H> {
    shards: Vec<HashMap<ClusterId, ReplayCache<H>>>,
    read_capacity: usize,
    max_batches: usize,
}

/// Default shard count: a power of two comfortably above the simulated
/// partition counts, so partitions spread evenly.
pub const DEFAULT_SHARD_COUNT: usize = 8;

impl<H: BatchCommitment + Clone> ShardedReplayCache<H> {
    /// `shards` independent shards; each partition's cache is created
    /// on first touch with `read_capacity` fragments over
    /// `max_batches` batches.
    pub fn new(shards: usize, read_capacity: usize, max_batches: usize) -> Self {
        ShardedReplayCache {
            shards: (0..shards.max(1)).map(|_| HashMap::new()).collect(),
            read_capacity,
            max_batches,
        }
    }

    /// Which shard `cluster` lives in (Fibonacci hashing of the id —
    /// consecutive cluster ids land in different shards).
    pub fn shard_of(&self, cluster: ClusterId) -> usize {
        let h = (cluster.as_usize() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.shards.len()
    }

    /// The partition's cache, created on first touch.
    pub fn cache_for(&mut self, cluster: ClusterId) -> &mut ReplayCache<H> {
        let shard = self.shard_of(cluster);
        let (capacity, batches) = (self.read_capacity, self.max_batches);
        self.shards[shard]
            .entry(cluster)
            .or_insert_with(|| ReplayCache::new(capacity, batches))
    }

    /// The partition's cache, if it has ever been touched.
    pub fn get(&self, cluster: ClusterId) -> Option<&ReplayCache<H>> {
        self.shards[self.shard_of(cluster)].get(&cluster)
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Partitions with a live cache.
    pub fn partition_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Partition caches per shard (diagnostics: how even the spread is).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Every live partition cache, in unspecified order (coverage
    /// summaries sort on their own).
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &ReplayCache<H>)> {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(c, cache)| (*c, cache)))
    }

    /// Replay counters aggregated across every shard.
    pub fn stats(&self) -> ReplayStats {
        let mut total = ReplayStats::default();
        for shard in &self.shards {
            for cache in shard.values() {
                total.absorb(&cache.stats);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Header;

    impl BatchCommitment for Header {
        fn cluster(&self) -> ClusterId {
            ClusterId(0)
        }
        fn batch(&self) -> BatchNum {
            BatchNum(0)
        }
        fn merkle_root(&self) -> &transedge_crypto::Digest {
            unreachable!("sharding tests never verify")
        }
        fn lce(&self) -> Epoch {
            Epoch::NONE
        }
        fn timestamp(&self) -> SimTime {
            SimTime::ZERO
        }
        fn certified_digest(&self) -> transedge_crypto::Digest {
            unreachable!("sharding tests never verify")
        }
    }

    #[test]
    fn shards_spread_partitions_and_isolate_caches() {
        let mut sharded: ShardedReplayCache<Header> = ShardedReplayCache::new(8, 64, 4);
        for c in 0..16u16 {
            sharded.cache_for(ClusterId(c));
        }
        assert_eq!(sharded.partition_count(), 16);
        // Fibonacci hashing spreads 16 consecutive ids over all 8
        // shards, none empty and none hoarding.
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 16);
        assert!(loads.iter().all(|&l| l > 0), "no empty shard: {loads:?}");
        assert!(loads.iter().all(|&l| l <= 4), "no hot shard: {loads:?}");
        // Same cluster → same shard and the same cache on every touch.
        assert_eq!(
            sharded.shard_of(ClusterId(3)),
            sharded.shard_of(ClusterId(3))
        );
        sharded.cache_for(ClusterId(3)).stats.passes += 1;
        assert_eq!(sharded.get(ClusterId(3)).unwrap().stats.passes, 1);
        assert_eq!(sharded.get(ClusterId(4)).unwrap().stats.passes, 0);
        assert_eq!(sharded.stats().passes, 1);
    }

    #[test]
    fn sharded_stats_aggregate_all_partitions() {
        let mut sharded: ShardedReplayCache<Header> = ShardedReplayCache::new(4, 64, 4);
        for c in 0..6u16 {
            let cache = sharded.cache_for(ClusterId(c));
            cache.stats.replayed += u64::from(c);
            cache.stats.multis_replayed += 1;
        }
        let total = sharded.stats();
        assert_eq!(total.replayed, (0..6).sum::<u64>());
        assert_eq!(total.multis_replayed, 6);
    }
}
