//! Store-free edge serving: cache certified response fragments from
//! upstream replicas and replay them to clients.
//!
//! An edge replay node is the cheapest possible read scaler: it holds
//! no partition state, no Merkle tree, and no signing keys — only
//! [`ProofBundle`] fragments it saw go past. Because every fragment is
//! anchored in an `f+1` certificate and per-key proofs, replaying one
//! can serve a later client *without any trust in the edge node*: the
//! client's [`crate::verifier::ReadVerifier`] re-checks everything.
//! This is WedgeChain's lazy-trust pattern applied to TransEdge's ROT
//! protocol.

use std::collections::BTreeMap;

use transedge_common::{BatchNum, Epoch, Key, SimTime};
use transedge_consensus::Certificate;

use crate::cache::{CacheStats, LruCache};
use crate::response::{BatchCommitment, ProofBundle, ProvenRead};

/// Counters for the replay path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Bundles absorbed from upstream.
    pub admitted: u64,
    /// Requests answered entirely from cache.
    pub replayed: u64,
    /// Requests that could not be answered (missing batch or keys).
    pub passes: u64,
}

/// The cache an edge replay node runs on.
#[derive(Clone, Debug)]
pub struct ReplayCache<H> {
    /// Certified headers by batch, newest retained up to `max_batches`.
    commitments: BTreeMap<u64, (H, Certificate)>,
    /// Per-`(key, batch)` verified-fragment cache.
    reads: LruCache<(Key, u64), ProvenRead>,
    max_batches: usize,
    pub stats: ReplayStats,
}

impl<H: BatchCommitment + Clone> ReplayCache<H> {
    pub fn new(read_capacity: usize, max_batches: usize) -> Self {
        ReplayCache {
            commitments: BTreeMap::new(),
            reads: LruCache::new(read_capacity),
            max_batches: max_batches.max(1),
            stats: ReplayStats::default(),
        }
    }

    /// Absorb an upstream response: remember the certified header and
    /// every per-key fragment.
    pub fn admit(&mut self, bundle: &ProofBundle<H>) {
        let batch = bundle.commitment.batch();
        self.commitments
            .insert(batch.0, (bundle.commitment.clone(), bundle.cert.clone()));
        // Fragments go in before the eviction pass so that a bundle too
        // old to survive it (a late upstream response) has its
        // fragments swept with its commitment rather than stranded.
        for read in &bundle.reads {
            self.reads.insert((read.key.clone(), batch.0), read.clone());
        }
        let mut evicted_any = false;
        while self.commitments.len() > self.max_batches {
            let (&oldest, _) = self.commitments.iter().next().expect("non-empty");
            self.commitments.remove(&oldest);
            evicted_any = true;
        }
        if evicted_any {
            // Fragments of evicted batches are unreachable (replay only
            // scans live commitments); drop them so they stop occupying
            // LRU slots.
            let commitments = &self.commitments;
            self.reads.retain(|(_, b), _| commitments.contains_key(b));
        }
        self.stats.admitted += 1;
    }

    /// Newest admitted batch, if any.
    pub fn latest_batch(&self) -> Option<BatchNum> {
        self.commitments.keys().next_back().map(|b| BatchNum(*b))
    }

    /// Try to answer `keys` wholly from cache: the newest admitted
    /// batch whose LCE is at least `min_lce` and whose batch timestamp
    /// is at least `min_timestamp`, with a cached fragment for every
    /// requested key. Returns `None` (a "pass" — the caller forwards
    /// upstream, refreshing the cache) otherwise.
    ///
    /// The timestamp floor is what keeps an honest edge from wedging:
    /// without it, a hot key set would be replayed from the same aging
    /// batch forever, and once that batch fell out of the client's
    /// freshness window every reply would be rejected — while the cache
    /// never refreshed, because every request kept hitting. Pass
    /// [`SimTime::ZERO`] to disable the floor.
    pub fn replay(
        &mut self,
        keys: &[Key],
        min_lce: Epoch,
        min_timestamp: SimTime,
    ) -> Option<ProofBundle<H>> {
        let candidates: Vec<u64> = self.commitments.keys().rev().copied().collect();
        for batch in candidates {
            let (commitment, cert) = &self.commitments[&batch];
            if commitment.lce() < min_lce || commitment.timestamp() < min_timestamp {
                // Commitments are scanned newest-first, and both LCE
                // and leader timestamps are monotone over batches:
                // nothing older satisfies the floor either.
                break;
            }
            if !keys
                .iter()
                .all(|k| self.reads.contains(&(k.clone(), batch)))
            {
                continue;
            }
            let commitment = commitment.clone();
            let cert = cert.clone();
            let reads = keys
                .iter()
                .map(|k| {
                    self.reads
                        .get(&(k.clone(), batch))
                        .expect("checked above")
                        .clone()
                })
                .collect();
            self.stats.replayed += 1;
            return Some(ProofBundle {
                commitment,
                cert,
                reads,
            });
        }
        self.stats.passes += 1;
        None
    }

    /// Fragment-cache counters (hits count replayed fragments).
    pub fn read_stats(&self) -> CacheStats {
        self.reads.stats
    }

    /// Per-key fragments currently cached (only fragments of live
    /// commitments are retained).
    pub fn fragment_count(&self) -> usize {
        self.reads.len()
    }
}
