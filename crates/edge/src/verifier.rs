//! The client-side (trusted) checker for proof-carrying reads.
//!
//! This is the entire trust boundary of the edge read path: a response
//! is accepted only if every link of the chain holds —
//!
//! 1. the commitment names the partition the client asked (a response
//!    for the wrong partition proves nothing);
//! 2. the `f+1` certificate covers the digest recomputed *from the
//!    commitment itself* (so at least one honest replica vouches for
//!    the batch; a forged root would need a forged certificate);
//! 3. the batch timestamp is inside the freshness window (§4.4.2 — an
//!    edge node cannot serve arbitrarily stale snapshots);
//! 4. the snapshot's LCE reaches the requested floor (round two of
//!    Algorithm 2 — an edge node cannot silently downgrade a
//!    dependency fetch);
//! 5. every requested key carries a Merkle (non-)inclusion proof that
//!    verifies against the certified root, and present values hash to
//!    the proven value digest.
//!
//! Anything else is a [`ReadRejection`], which callers count as
//! evidence of a byzantine server and answer by re-asking a different
//! node.

use std::collections::HashMap;

use transedge_common::{BatchNum, ClusterId, Epoch, Key, SimDuration, SimTime, Value};
use transedge_consensus::Certificate;
use transedge_crypto::merkle::{value_digest, verify_proof, Verified};
use transedge_crypto::{sha256, verify_multi_proof, verify_range_proof, KeyStore, ScanRange};

use crate::query::{PageToken, QueryAnswer, QueryShape, ReadQuery, ReadResponse};
use crate::response::{
    changed_keys_digest, BatchCommitment, CertifiedDelta, MultiProofBundle, ProofBundle,
    ProvenRead, ScanBundle,
};

/// Verification parameters; must match the deployment's node
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct VerifyParams {
    /// Merkle tree depth (2^depth buckets) proofs are checked against.
    pub tree_depth: u32,
    /// §4.4.2 freshness window on batch timestamps.
    pub freshness_window: SimDuration,
    /// Signatures a certificate needs (`f+1`).
    pub quorum: usize,
}

/// Why a response was rejected. Every variant is an observable lie an
/// untrusted edge node could try.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadRejection {
    /// Response names a different partition than requested.
    WrongCluster { expected: ClusterId, got: ClusterId },
    /// Certificate missing, mismatched with the commitment, or not
    /// carrying a quorum of valid replica signatures.
    BadCertificate,
    /// Batch timestamp outside the freshness window.
    StaleTimestamp,
    /// Snapshot does not reach the requested dependency floor (a
    /// round-two response below `min_lce` — the "stale root" attack).
    StaleSnapshot { required: Epoch, lce: Epoch },
    /// A requested key has no answer in the response.
    MissingKey(Key),
    /// A proof does not verify against the certified root.
    BadProof(Key),
    /// Proof shows the key present, but the value does not hash to the
    /// proven digest (or is missing).
    ValueMismatch(Key),
    /// Proof shows the key absent, but a value was attached anyway.
    PhantomValue(Key),
    /// Assembled response carried no sections at all.
    EmptyAssembly,
    /// Sections of an assembled response disagree on the snapshot
    /// batch. Accepting mixed cuts within one partition would let an
    /// untrusted edge serve torn reads (key A from an old batch, key B
    /// from a new one) that no other check can catch, so the verifier
    /// requires every section to pin the same batch.
    TornAssembly { anchor: BatchNum, got: BatchNum },
    /// A key was answered by more than one section of an assembled
    /// response.
    DuplicateKey(Key),
    /// The proven scan window does not cover the requested range — a
    /// *boundary truncation*: shrinking the proven window is how a
    /// server would hide rows at the edges of a scan while every
    /// surviving row still verified.
    ScanRangeNotCovered {
        requested: ScanRange,
        proven: ScanRange,
    },
    /// The scan's completeness proof does not verify against the
    /// certified root (malformed, tampered, or spliced from a different
    /// batch's tree — the torn-scan attack).
    BadRangeProof,
    /// The row list does not match the proven window's committed
    /// content: the proof commits to `proven` entries but `returned`
    /// rows came back. Fewer rows than entries is the *omission*
    /// attack a point proof can never catch.
    IncompleteScan { proven: usize, returned: usize },
    /// A returned row does not hash to the committed entry at its
    /// position in the window (wrong value, out of tree order, or a
    /// duplicated/foreign row).
    ScanRowMismatch(Key),
    /// The response payload does not match the query's shape (a scan
    /// answered with point sections or vice versa).
    ShapeMismatch,
    /// The query pinned an exact snapshot (an [`crate::SnapshotPolicy::AtBatch`]
    /// policy or a [`crate::PageToken`]) and the response was served at
    /// a different batch — the page-splice attack: mixing pages of one
    /// scan across batches would produce a row set no single snapshot
    /// ever held.
    SnapshotPinMismatch { pinned: BatchNum, got: BatchNum },
    /// A page token's resume bound lies outside the query's range
    /// (moved backwards to or before the first window, or past the
    /// end) — a tampered or replayed token.
    PageOutOfRange { resume: u64, range: ScanRange },
    /// A prefix-resume response proved (against the new snapshot's
    /// certified root) that the held prefix **changed** between the old
    /// and new batches. **Not a byzantine signal** — committed data
    /// legitimately moved under the scan; the caller restarts the
    /// partition's pagination from page one and must not demote the
    /// server. The only `ReadRejection` that names honest behaviour.
    PrefixDiverged,
    /// A requested key is not in a multiproof response's proven key
    /// set — the multiproof analogue of [`ReadRejection::MissingKey`]:
    /// a server cannot silently drop one key of a batched read, because
    /// the proven set is checked against the request before anything
    /// else.
    MultiProofKeyMissing(Key),
    /// A multiproof body is malformed or its joint proof does not
    /// verify against the certified root: unsorted/duplicated proven
    /// keys, a value slot count that disagrees with the key count, a
    /// dropped or substituted sibling, a spliced bucket — every
    /// single-element mutation of the body lands here.
    BadMultiProof,
    /// A certified delta's changed key set does not hash to the
    /// commitment's certified delta digest (a key added, dropped, or
    /// reordered), or a freshness feed's deltas touch a queried key —
    /// contradicting the response's claim that the served values are
    /// current through the feed head. Either way, a provable lie about
    /// what changed.
    BadDelta,
    /// A freshness feed is not a contiguous batch chain from the served
    /// snapshot: a gap hides the deltas of the skipped batches (where a
    /// queried key may have changed), a backward or repeated batch is a
    /// replayed delta.
    FeedSpliced { expected: BatchNum, got: BatchNum },
}

/// The verifier. Stateless; cheap to copy into clients.
#[derive(Clone, Copy, Debug)]
pub struct ReadVerifier {
    pub params: VerifyParams,
}

impl ReadVerifier {
    pub fn new(params: VerifyParams) -> Self {
        ReadVerifier { params }
    }

    /// Verify a full response for `expected_cluster`, requiring
    /// `min_lce` (use [`Epoch::NONE`] for round-one reads with no
    /// dependency floor). On success returns the verified
    /// `(key, value)` pairs in `expected_keys` order.
    #[allow(clippy::too_many_arguments)]
    pub fn verify<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        commitment: &H,
        cert: &Certificate,
        expected_keys: &[Key],
        reads: &[ProvenRead],
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        // 1–4. Commitment chained to a certificate, fresh, above floor.
        self.check_commitment(keys, expected_cluster, commitment, cert, min_lce, now)?;
        // 5. Every requested key answered with a verifying proof.
        self.verify_reads(commitment, expected_keys, reads)
    }

    /// Steps 1–4 of every proof chain: the commitment names the
    /// expected partition, its recomputed digest is covered by an `f+1`
    /// certificate, its timestamp is inside the freshness window (both
    /// skew directions), and its LCE reaches the dependency floor.
    /// Shared by the point, multiproof, and scan chains.
    fn check_commitment<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        commitment: &H,
        cert: &Certificate,
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<(), ReadRejection> {
        // 1. Right partition.
        if commitment.cluster() != expected_cluster {
            return Err(ReadRejection::WrongCluster {
                expected: expected_cluster,
                got: commitment.cluster(),
            });
        }
        // 2. Certificate chains the commitment to f+1 replicas.
        let digest = commitment.certified_digest();
        if cert.cluster != expected_cluster
            || cert.slot != commitment.batch()
            || cert.digest != digest
            || cert.verify(keys, self.params.quorum).is_err()
        {
            return Err(ReadRejection::BadCertificate);
        }
        // 3. Freshness, in either direction of clock skew.
        let ts = commitment.timestamp();
        let skew = now.saturating_since(ts).max(ts.saturating_since(now));
        if skew > self.params.freshness_window {
            return Err(ReadRejection::StaleTimestamp);
        }
        // 4. Dependency floor (round two).
        if commitment.lce() < min_lce {
            return Err(ReadRejection::StaleSnapshot {
                required: min_lce,
                lce: commitment.lce(),
            });
        }
        Ok(())
    }

    /// Verify one [`CertifiedDelta`]: the commitment names the expected
    /// partition, the `f+1` certificate covers its recomputed digest,
    /// and the carried changed-key set is canonical (sorted, unique)
    /// and hashes to the commitment's certified
    /// [`BatchCommitment::delta_digest`]. Deliberately *no* freshness
    /// check — a delta is a historical fact, and time-dependent checks
    /// belong to the feed head (see [`ReadVerifier::verify_feed`]) so
    /// they can never mask a cryptographic rejection.
    pub fn verify_delta<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        delta: &CertifiedDelta<H>,
    ) -> Result<(), ReadRejection> {
        if delta.commitment.cluster() != expected_cluster {
            return Err(ReadRejection::WrongCluster {
                expected: expected_cluster,
                got: delta.commitment.cluster(),
            });
        }
        let digest = delta.commitment.certified_digest();
        if delta.cert.cluster != expected_cluster
            || delta.cert.slot != delta.commitment.batch()
            || delta.cert.digest != digest
            || delta.cert.verify(keys, self.params.quorum).is_err()
        {
            return Err(ReadRejection::BadCertificate);
        }
        // The changed set must be canonical and recompute to the digest
        // consensus signed: a relaying edge cannot add, drop, or
        // reorder one key without landing here.
        if !delta.changed.windows(2).all(|w| w[0] < w[1])
            || changed_keys_digest(&delta.changed) != delta.commitment.delta_digest()
        {
            return Err(ReadRejection::BadDelta);
        }
        Ok(())
    }

    /// Verify a freshness feed attached to a point/multi response: a
    /// contiguous chain of certified deltas from the served batch to
    /// the claimed feed head, none of which touches a queried key. A
    /// verified feed proves the served values are the values at the
    /// head — the subscription-tier claim that lets a warm client skip
    /// the round-2 `MinEpoch` fetch. Checks, in order (cryptographic
    /// before time-dependent, so staleness can never mask a lie):
    ///
    /// 1. contiguity: `feed[0]` is `served + 1` and each delta advances
    ///    by exactly one batch ([`ReadRejection::FeedSpliced`] — a gap
    ///    hides changes, a repeat is a replay);
    /// 2. each delta verifies per [`ReadVerifier::verify_delta`]
    ///    (certificate chain + changed-set digest);
    /// 3. no delta's changed set touches `queried`
    ///    ([`ReadRejection::BadDelta`] — the feed itself certifies the
    ///    served values are *not* current, contradicting the claim);
    /// 4. the head's timestamp (the served commitment's own, for an
    ///    empty feed) is inside the freshness window
    ///    ([`ReadRejection::StaleTimestamp`] — checked by the caller,
    ///    which holds the served commitment).
    ///
    /// Returns the head batch the caller may upgrade its view to.
    pub fn verify_feed<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        served: BatchNum,
        queried: &[Key],
        feed: &[CertifiedDelta<H>],
    ) -> Result<BatchNum, ReadRejection> {
        let mut expected = BatchNum(served.0 + 1);
        for delta in feed {
            let got = delta.batch();
            if got != expected {
                return Err(ReadRejection::FeedSpliced { expected, got });
            }
            self.verify_delta(keys, expected_cluster, delta)?;
            if delta.touches(queried) {
                return Err(ReadRejection::BadDelta);
            }
            expected = BatchNum(got.0 + 1);
        }
        Ok(feed.last().map_or(served, |d| d.batch()))
    }

    /// Step 4 of the feed chain: the freshness-window check against the
    /// verified head's timestamp (see [`ReadVerifier::verify_feed`]).
    fn check_feed_head_freshness(
        &self,
        head_ts: SimTime,
        now: SimTime,
    ) -> Result<(), ReadRejection> {
        let skew = now
            .saturating_since(head_ts)
            .max(head_ts.saturating_since(now));
        if skew > self.params.freshness_window {
            return Err(ReadRejection::StaleTimestamp);
        }
        Ok(())
    }

    /// Verify a batched multiproof response end to end: the commitment
    /// chain (steps 1–4 of [`ReadVerifier::verify`]), then
    ///
    /// 5. every requested key is in the proven key set (a cached
    ///    superset is fine; a dropped key is
    ///    [`ReadRejection::MultiProofKeyMissing`]);
    /// 6. the body is well-formed (sorted unique keys, one value slot
    ///    per key) and its **one** multiproof verifies against the
    ///    certified root, authenticating every proven key in a single
    ///    root recomputation;
    /// 7. every carried value — requested or not — hashes to its proven
    ///    digest (`Some` ↔ proven present, `None` ↔ proven absent), so
    ///    a tampered slot anywhere in a replayed superset is caught.
    ///
    /// On success returns the verified `(key, value)` pairs in
    /// `expected_keys` order.
    pub fn verify_multi<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        bundle: &MultiProofBundle<H>,
        expected_keys: &[Key],
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        self.check_commitment(
            keys,
            expected_cluster,
            &bundle.commitment,
            &bundle.cert,
            min_lce,
            now,
        )?;
        let body = &bundle.body;
        // 5. Proven set covers the request. Checked before the proof:
        // a dropped requested key must be reported as the omission it
        // is, not as a generic malformed proof.
        if !body.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(ReadRejection::BadMultiProof);
        }
        for key in expected_keys {
            if body.keys.binary_search(key).is_err() {
                return Err(ReadRejection::MultiProofKeyMissing(key.clone()));
            }
        }
        // 6. One joint proof for the whole proven set.
        if body.values.len() != body.keys.len() {
            return Err(ReadRejection::BadMultiProof);
        }
        let verdicts = verify_multi_proof(
            bundle.commitment.merkle_root(),
            self.params.tree_depth,
            &body.keys,
            &body.proof,
        )
        .map_err(|_| ReadRejection::BadMultiProof)?;
        // 7. Every value slot agrees with its proven verdict.
        for ((key, value), verdict) in body.keys.iter().zip(&body.values).zip(&verdicts) {
            match (verdict, value) {
                (Verified::Present(digest), Some(v)) if value_digest(v) == *digest => {}
                (Verified::Present(_), _) => return Err(ReadRejection::ValueMismatch(key.clone())),
                (Verified::Absent, None) => {}
                (Verified::Absent, Some(_)) => {
                    return Err(ReadRejection::PhantomValue(key.clone()))
                }
            }
        }
        Ok(expected_keys
            .iter()
            .map(|key| {
                let i = body.keys.binary_search(key).expect("checked in step 5");
                (key.clone(), body.values[i].clone())
            })
            .collect())
    }

    /// Step 5 of the chain on its own: every key in `expected_keys`
    /// answered with a Merkle (non-)inclusion proof verifying against
    /// `commitment`'s root, present values hashing to the proven
    /// digests. Only sound once the commitment itself has been chained
    /// to a certificate (steps 1–4) — callers reuse it when several
    /// sections share one already-verified commitment.
    fn verify_reads<H: BatchCommitment>(
        &self,
        commitment: &H,
        expected_keys: &[Key],
        reads: &[ProvenRead],
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        let root = commitment.merkle_root();
        let mut out = Vec::with_capacity(expected_keys.len());
        for key in expected_keys {
            let Some(read) = reads.iter().find(|r| &r.key == key) else {
                return Err(ReadRejection::MissingKey(key.clone()));
            };
            match verify_proof(root, self.params.tree_depth, key, &read.proof) {
                Ok(Verified::Present(proven_digest)) => match &read.value {
                    Some(value) if value_digest(value) == proven_digest => {
                        out.push((key.clone(), Some(value.clone())));
                    }
                    _ => return Err(ReadRejection::ValueMismatch(key.clone())),
                },
                Ok(Verified::Absent) => {
                    if read.value.is_some() {
                        return Err(ReadRejection::PhantomValue(key.clone()));
                    }
                    out.push((key.clone(), None));
                }
                Err(_) => return Err(ReadRejection::BadProof(key.clone())),
            }
        }
        Ok(out)
    }

    /// [`ReadVerifier::verify`] over a [`ProofBundle`], expecting an
    /// answer for every key in the bundle.
    pub fn verify_bundle<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        bundle: &ProofBundle<H>,
        expected_keys: &[Key],
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        self.verify(
            keys,
            expected_cluster,
            &bundle.commitment,
            &bundle.cert,
            expected_keys,
            &bundle.reads,
            min_lce,
            now,
        )
    }

    /// Verify a proof-carrying range scan end to end. On top of the
    /// point-read chain (partition → certificate → freshness → LCE
    /// floor), a scan must prove **completeness**: that the returned
    /// rows are *all* the committed rows of the requested window — an
    /// untrusted edge must not be able to silently omit one. The checks:
    ///
    /// 1–4. identical to [`ReadVerifier::verify`] (cluster, `f+1`
    ///      certificate over the recomputed digest, freshness window,
    ///      dependency floor);
    /// 5. the *proven* window covers the *requested* range (a cached
    ///    wider window is fine — anything narrower is a boundary
    ///    truncation and rejected);
    /// 6. the Merkle range proof verifies against the certified root,
    ///    yielding the committed entry list of the proven window;
    /// 7. the returned rows match that entry list **exactly** — same
    ///    count, each row hashing to its entry, in tree order. Any
    ///    omitted, injected, reordered, or tampered row breaks this.
    ///
    /// On success returns the verified rows *restricted to the
    /// requested range* (rows of a wider proven window are verified,
    /// then filtered).
    pub fn verify_scan<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        bundle: &ScanBundle<H>,
        requested: &ScanRange,
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<(Key, Value)>, ReadRejection> {
        let entries =
            self.verify_scan_chain(keys, expected_cluster, bundle, requested, min_lce, now)?;
        // 7. Rows ↔ entries, exactly. The entry list is the complete
        // committed content of the window (step 6), so matching it
        // one-to-one in order rules out omission, injection, and
        // duplication in a single pass.
        let rows = &bundle.scan.rows;
        if rows.len() != entries.len() {
            return Err(ReadRejection::IncompleteScan {
                proven: entries.len(),
                returned: rows.len(),
            });
        }
        let mut verified = Vec::with_capacity(rows.len());
        for ((key, value), entry) in rows.iter().zip(&entries) {
            if sha256(key.as_bytes()) != entry.key_hash || value_digest(value) != entry.value_hash {
                return Err(ReadRejection::ScanRowMismatch(key.clone()));
            }
            if requested.contains_bucket(ScanRange::bucket_of_hash(
                &entry.key_hash,
                self.params.tree_depth,
            )) {
                verified.push((key.clone(), value.clone()));
            }
        }
        Ok(verified)
    }

    /// Steps 1–6 of the scan chain (partition → certificate →
    /// freshness → LCE floor → coverage → completeness proof), shared
    /// by [`ReadVerifier::verify_scan`] and the prefix-resume path. On
    /// success returns the **complete** committed entry list of the
    /// *proven* window (which may be wider than `requested`), in tree
    /// order; only then is matching rows against it meaningful.
    fn verify_scan_chain<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        bundle: &ScanBundle<H>,
        requested: &ScanRange,
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<transedge_crypto::merkle::BucketEntry>, ReadRejection> {
        let commitment = &bundle.commitment;
        // 1–4. Commitment chained to a certificate, fresh, above floor.
        self.check_commitment(
            keys,
            expected_cluster,
            commitment,
            &bundle.cert,
            min_lce,
            now,
        )?;
        // 5. Coverage: the proven window must contain the request.
        let proven_range = bundle.scan.range;
        if !proven_range.covers(requested) {
            return Err(ReadRejection::ScanRangeNotCovered {
                requested: *requested,
                proven: proven_range,
            });
        }
        // 6. Completeness proof against the certified root.
        match verify_range_proof(
            commitment.merkle_root(),
            self.params.tree_depth,
            &proven_range,
            &bundle.scan.proof,
        ) {
            Ok(entries) => Ok(entries),
            Err(_) => Err(ReadRejection::BadRangeProof),
        }
    }

    /// Verify a partially-assembled response: a sequence of sections
    /// (cached fragments, upstream fill), each a self-contained
    /// [`ProofBundle`] whose per-key proofs are checked against *its
    /// own* certified root. On top of the per-section chain
    /// (partition → certificate → freshness → LCE floor → proofs),
    /// the assembly as a whole must
    ///
    /// * pin every section to the same batch (anything else would
    ///   permit torn reads within the partition — [`ReadRejection::TornAssembly`]);
    /// * answer every key in `expected_keys` exactly once across
    ///   sections (extra unrequested keys are verified but dropped).
    ///
    /// A single-section assembly is equivalent to
    /// [`ReadVerifier::verify_bundle`].
    pub fn verify_assembled<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        sections: &[ProofBundle<H>],
        expected_keys: &[Key],
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<Vec<(Key, Option<Value>)>, ReadRejection> {
        let Some(first) = sections.first() else {
            return Err(ReadRejection::EmptyAssembly);
        };
        let anchor = first.commitment.batch();
        let anchor_digest = first.commitment.certified_digest();
        let mut by_key: HashMap<Key, Option<Value>> = HashMap::new();
        for (i, section) in sections.iter().enumerate() {
            if section.commitment.batch() != anchor {
                return Err(ReadRejection::TornAssembly {
                    anchor,
                    got: section.commitment.batch(),
                });
            }
            // Each section vouches for exactly the keys it carries.
            let section_keys: Vec<Key> = section.reads.iter().map(|r| r.key.clone()).collect();
            let values = if i > 0 && section.commitment.certified_digest() == anchor_digest {
                // Content-identical commitment (the certified digest
                // covers every field, root included): the anchor
                // section already chained it to a certificate and
                // checked freshness and the LCE floor, so only this
                // section's per-key proofs are new work. This is the
                // honest partial-assembly fast path — one certificate
                // verification per response, not one per section.
                self.verify_reads(&section.commitment, &section_keys, &section.reads)?
            } else {
                self.verify(
                    keys,
                    expected_cluster,
                    &section.commitment,
                    &section.cert,
                    &section_keys,
                    &section.reads,
                    min_lce,
                    now,
                )?
            };
            for (key, value) in values {
                if by_key.insert(key.clone(), value).is_some() {
                    return Err(ReadRejection::DuplicateKey(key));
                }
            }
        }
        expected_keys
            .iter()
            .map(|k| {
                by_key
                    .remove(k)
                    .map(|v| (k.clone(), v))
                    .ok_or_else(|| ReadRejection::MissingKey(k.clone()))
            })
            .collect()
    }

    /// The single verifier entry point of the unified read protocol:
    /// check a [`ReadResponse`] against the [`ReadQuery`] (one
    /// per-partition sub-query) it answers, dispatching to the
    /// point/assembled/scan proof chains and enforcing the query's
    /// snapshot policy and page pin on top:
    ///
    /// * shape: the payload must match the query's shape
    ///   ([`ReadRejection::ShapeMismatch`]);
    /// * page token: the resume bound must lie inside the query's range
    ///   past its first window ([`ReadRejection::PageOutOfRange`] — a
    ///   tampered or replayed token), and the response must be served
    ///   at exactly the token's batch
    ///   ([`ReadRejection::SnapshotPinMismatch`] — the page-splice
    ///   attack);
    /// * policy: [`crate::SnapshotPolicy::AtBatch`] pins the batch the
    ///   same way; [`crate::SnapshotPolicy::MinEpoch`] becomes the LCE
    ///   floor of the underlying chain (scans included — the round-two
    ///   semantics point reads always had).
    ///
    /// On success returns the verified [`QueryAnswer`]; for scans it
    /// includes the [`PageToken`] for the next page, pinned to the
    /// batch this page verified at.
    pub fn verify_query<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        query: &ReadQuery,
        response: &ReadResponse<H>,
        now: SimTime,
    ) -> Result<QueryAnswer, ReadRejection> {
        self.verify_query_resuming(keys, expected_cluster, query, response, &[], now)
    }

    /// [`ReadVerifier::verify_query`] for callers holding a verified
    /// prefix: when the query carries a [`crate::PrefixResume`],
    /// `held_prefix` must be the rows (in tree order) the caller
    /// verified for buckets `[range.first, through]` at the *old*
    /// snapshot. The response's completeness proof covers the whole
    /// prefix-plus-page window at the new snapshot, but carries rows
    /// only past the prefix; the held rows are matched against the
    /// prefix's proof entries instead. Matching carries the prefix over
    /// to the new snapshot; divergence (the data changed between
    /// batches — honest behaviour) is
    /// [`ReadRejection::PrefixDiverged`]; anything else is the usual
    /// byzantine evidence. On success returns only the *fresh* rows —
    /// the caller already holds the prefix.
    pub fn verify_query_resuming<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        query: &ReadQuery,
        response: &ReadResponse<H>,
        held_prefix: &[(Key, Value)],
        now: SimTime,
    ) -> Result<QueryAnswer, ReadRejection> {
        let min_lce = query.min_lce();
        if let (QueryShape::Scan { range, .. }, ReadResponse::Scan { bundle }, Some(through)) =
            (&query.shape, response, query.fresh_rows_from())
        {
            return self.verify_prefix_resume(
                keys,
                expected_cluster,
                query,
                bundle.as_ref(),
                *range,
                through,
                held_prefix,
                min_lce,
                now,
            );
        }
        match (&query.shape, response) {
            (QueryShape::Point { keys: expected }, ReadResponse::Point { sections, fresh }) => {
                let mut check_now = now;
                if let Some(feed) = fresh {
                    let Some(first) = sections.first() else {
                        return Err(ReadRejection::EmptyAssembly);
                    };
                    self.verify_feed(keys, expected_cluster, first.batch(), expected, feed)?;
                    let head_ts = feed
                        .last()
                        .map_or(first.commitment.timestamp(), |d| d.commitment.timestamp());
                    self.check_feed_head_freshness(head_ts, now)?;
                    // The verified feed proves the served values current
                    // through a fresh head, so the served batch's own age
                    // is no longer a staleness signal: anchor the base
                    // chain's clock at it.
                    check_now = first.commitment.timestamp();
                }
                let values = self.verify_assembled(
                    keys,
                    expected_cluster,
                    sections,
                    expected,
                    min_lce,
                    check_now,
                )?;
                if let Some(pinned) = query.pinned_batch() {
                    // Non-empty: verify_assembled rejects empty assemblies.
                    let got = sections[0].batch();
                    if got != pinned {
                        return Err(ReadRejection::SnapshotPinMismatch { pinned, got });
                    }
                }
                Ok(QueryAnswer::Values(values))
            }
            (QueryShape::Point { keys: expected }, ReadResponse::Multi { bundle, fresh }) => {
                let mut check_now = now;
                if let Some(feed) = fresh {
                    self.verify_feed(keys, expected_cluster, bundle.batch(), expected, feed)?;
                    let head_ts = feed
                        .last()
                        .map_or(bundle.commitment.timestamp(), |d| d.commitment.timestamp());
                    self.check_feed_head_freshness(head_ts, now)?;
                    check_now = bundle.commitment.timestamp();
                }
                let values = self.verify_multi(
                    keys,
                    expected_cluster,
                    bundle.as_ref(),
                    expected,
                    min_lce,
                    check_now,
                )?;
                if let Some(pinned) = query.pinned_batch() {
                    let got = bundle.batch();
                    if got != pinned {
                        return Err(ReadRejection::SnapshotPinMismatch { pinned, got });
                    }
                }
                Ok(QueryAnswer::Values(values))
            }
            (QueryShape::Scan { range, .. }, ReadResponse::Scan { bundle }) => {
                if let Some(PageToken { resume, .. }) = query.page {
                    // The first page starts at `range.first` with no
                    // token, so a legitimate token always resumes
                    // strictly inside the range: anything at or before
                    // the start is a token moved backwards (replaying
                    // already-scanned buckets), anything past the end a
                    // fabricated continuation.
                    if resume <= range.first || resume > range.last {
                        return Err(ReadRejection::PageOutOfRange {
                            resume,
                            range: *range,
                        });
                    }
                }
                let Some(window) = query.scan_window() else {
                    return Err(ReadRejection::PageOutOfRange {
                        resume: query.page.as_ref().map_or(range.first, |t| t.resume),
                        range: *range,
                    });
                };
                if let Some(pinned) = query.pinned_batch() {
                    let got = bundle.batch();
                    if got != pinned {
                        return Err(ReadRejection::SnapshotPinMismatch { pinned, got });
                    }
                }
                let rows = self.verify_scan(
                    keys,
                    expected_cluster,
                    bundle.as_ref(),
                    &window,
                    min_lce,
                    now,
                )?;
                let next = if window.last < range.last {
                    Some(PageToken {
                        batch: bundle.batch(),
                        resume: window.last + 1,
                    })
                } else {
                    None
                };
                Ok(QueryAnswer::Rows { rows, next })
            }
            _ => Err(ReadRejection::ShapeMismatch),
        }
    }

    /// The prefix-resume scan check (see
    /// [`ReadVerifier::verify_query_resuming`]): one proof over the
    /// whole prefix-plus-page window at the new snapshot; held rows
    /// match the prefix's entries, returned rows match the rest.
    #[allow(clippy::too_many_arguments)]
    fn verify_prefix_resume<H: BatchCommitment>(
        &self,
        keys: &KeyStore,
        expected_cluster: ClusterId,
        query: &ReadQuery,
        bundle: &ScanBundle<H>,
        range: ScanRange,
        through: u64,
        held_prefix: &[(Key, Value)],
        min_lce: Epoch,
        now: SimTime,
    ) -> Result<QueryAnswer, ReadRejection> {
        // A prefix bound outside the range is a malformed (or tampered)
        // resume marker, like a bad page token.
        if through < range.first || through > range.last {
            return Err(ReadRejection::PageOutOfRange {
                resume: through,
                range,
            });
        }
        let window = query.scan_window().ok_or(ReadRejection::PageOutOfRange {
            resume: through,
            range,
        })?;
        if let Some(pinned) = query.pinned_batch() {
            let got = bundle.batch();
            if got != pinned {
                return Err(ReadRejection::SnapshotPinMismatch { pinned, got });
            }
        }
        let entries =
            self.verify_scan_chain(keys, expected_cluster, bundle, &window, min_lce, now)?;
        // Walk the complete committed entry list of the proven window in
        // tree order, consuming from two cursors: entries inside the
        // held prefix `[range.first, through]` must match the held rows
        // (a mismatch or count difference proves the data changed —
        // divergence, not byzantine); everything else (the fresh page,
        // and any covering-window overhang outside the range) must come
        // from the response's rows, exactly as in the full scan check.
        let depth = self.params.tree_depth;
        let proven = entries.len();
        let rows = &bundle.scan.rows;
        // Count check first, like the full-scan path: the proof
        // commits to exactly the fresh-region row count, so omission
        // and row-stuffing are length errors before they are content
        // errors.
        let expected_rows = entries
            .iter()
            .filter(|e| {
                let bucket = ScanRange::bucket_of_hash(&e.key_hash, depth);
                bucket < range.first || bucket > through
            })
            .count();
        if rows.len() != expected_rows {
            return Err(ReadRejection::IncompleteScan {
                proven,
                returned: rows.len(),
            });
        }
        let mut held = held_prefix.iter();
        let mut rows_idx = 0usize;
        let mut fresh = Vec::new();
        for entry in &entries {
            let bucket = ScanRange::bucket_of_hash(&entry.key_hash, depth);
            if bucket >= range.first && bucket <= through {
                let Some((key, value)) = held.next() else {
                    return Err(ReadRejection::PrefixDiverged);
                };
                if sha256(key.as_bytes()) != entry.key_hash
                    || value_digest(value) != entry.value_hash
                {
                    return Err(ReadRejection::PrefixDiverged);
                }
            } else {
                let Some((key, value)) = rows.get(rows_idx) else {
                    return Err(ReadRejection::IncompleteScan {
                        proven,
                        returned: rows.len(),
                    });
                };
                rows_idx += 1;
                if sha256(key.as_bytes()) != entry.key_hash
                    || value_digest(value) != entry.value_hash
                {
                    return Err(ReadRejection::ScanRowMismatch(key.clone()));
                }
                if range.contains_bucket(bucket) && bucket <= window.last {
                    fresh.push((key.clone(), value.clone()));
                }
            }
        }
        if held.next().is_some() {
            // The new snapshot has fewer prefix rows than we hold.
            return Err(ReadRejection::PrefixDiverged);
        }
        if rows_idx != rows.len() {
            // Injected rows beyond the proven entries.
            return Err(ReadRejection::IncompleteScan {
                proven,
                returned: rows.len(),
            });
        }
        let next = if window.last < range.last {
            Some(PageToken {
                batch: bundle.batch(),
                resume: window.last + 1,
            })
        } else {
            None
        };
        Ok(QueryAnswer::Rows { rows: fresh, next })
    }
}
