//! Proof-carrying response types: what an untrusted node hands a
//! client, and the commitment interface the verifier checks it against.

use transedge_common::{BatchNum, ClusterId, Epoch, Key, SimTime, Value};
use transedge_consensus::Certificate;
use transedge_crypto::{Digest, MerkleProof, RangeProof, ScanRange};

/// One key's proof-carrying answer in a snapshot read: the value (or
/// `None` for a proven-absent key) and its Merkle (non-)inclusion proof
/// against the snapshot batch's root.
#[derive(Clone, Debug)]
pub struct ProvenRead {
    pub key: Key,
    pub value: Option<Value>,
    pub proof: MerkleProof,
}

/// What the verifier needs from a batch commitment (a certified batch
/// header, in `transedge-core` terms). The trait keeps this crate
/// independent of the batch wire format: any type that can name the
/// snapshot (cluster, batch, root, LCE, timestamp) and recompute the
/// digest the consensus certificate signs can anchor a verified read.
pub trait BatchCommitment {
    /// Partition the snapshot belongs to.
    fn cluster(&self) -> ClusterId;
    /// Batch the snapshot was cut at.
    fn batch(&self) -> BatchNum;
    /// Merkle root of the partition's tree after that batch.
    fn merkle_root(&self) -> &Digest;
    /// Last Committed Epoch of that batch (round-two freshness floor).
    fn lce(&self) -> Epoch;
    /// Leader-stamped wall clock of the batch (§4.4.2 freshness).
    fn timestamp(&self) -> SimTime;
    /// The digest the cluster's `f+1` accept signatures certify.
    fn certified_digest(&self) -> Digest;
}

/// A complete proof-carrying response for one partition: the
/// commitment, its consensus certificate, and one [`ProvenRead`] per
/// requested key. Everything in here is either signed or checkable
/// against something signed — an untrusted node can cache, replay, or
/// forward bundles, but not alter them undetected.
#[derive(Clone, Debug)]
pub struct ProofBundle<H> {
    pub commitment: H,
    pub cert: Certificate,
    pub reads: Vec<ProvenRead>,
}

impl<H: BatchCommitment> ProofBundle<H> {
    /// Batch this bundle snapshots.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }

    /// The bundle's answer for `key`, if present.
    pub fn read_for(&self, key: &Key) -> Option<&ProvenRead> {
        self.reads.iter().find(|r| &r.key == key)
    }
}

/// A proof-carrying range scan: every committed row of a contiguous
/// tree-order window, plus the Merkle range proof that makes the set
/// *complete* — an untrusted server cannot omit a row in `range`
/// without breaking the proof against the certified root. `range` is
/// the window actually proven; it may be wider than what a client
/// requested (an edge replaying a cached wider scan), and the verifier
/// checks coverage and filters.
#[derive(Clone, Debug)]
pub struct ScanProof {
    /// The proven window, in tree order (bucket indices).
    pub range: ScanRange,
    /// Every committed `(key, value)` in the window at the snapshot
    /// batch, ascending in tree order — one row per proof entry.
    pub rows: Vec<(Key, Value)>,
    /// Completeness proof binding `rows` to the certified root.
    pub proof: RangeProof,
}

impl ScanProof {
    /// Wire-size estimate for the simulator's bandwidth model.
    pub fn encoded_len(&self) -> usize {
        16 + self
            .rows
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>()
            + self.proof.encoded_len()
    }
}

/// A complete verified-scan response for one partition: the certified
/// commitment, its consensus certificate, and the proof-carrying rows.
/// The scan analogue of [`ProofBundle`] — cacheable and replayable by
/// untrusted nodes, alterable by none.
#[derive(Clone, Debug)]
pub struct ScanBundle<H> {
    pub commitment: H,
    pub cert: Certificate,
    pub scan: ScanProof,
}

impl<H: BatchCommitment> ScanBundle<H> {
    /// Batch this scan snapshots.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }
}
