//! Proof-carrying response types: what an untrusted node hands a
//! client, and the commitment interface the verifier checks it against.

use bytes::Bytes;
use transedge_common::{BatchNum, ClusterId, Encode, Epoch, Key, SimTime, Value, WireWriter};
use transedge_consensus::Certificate;
use transedge_crypto::{Digest, MerkleProof, MultiProof, RangeProof, ScanRange, Sha256};

/// Domain-separated digest over a batch's changed key set (sorted,
/// deduplicated). This is the digest a [`BatchCommitment`] certifies as
/// its [`BatchCommitment::delta_digest`]: because it is folded into the
/// certified batch digest by the replicas *at consensus time*, a
/// certified delta's changed-key list is ground truth — an edge
/// relaying one cannot add, drop, or reorder a key without breaking the
/// recomputation against the `f+1` certificate.
pub fn changed_keys_digest(keys: &[Key]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"transedge/delta");
    h.update(&(keys.len() as u64).to_le_bytes());
    for key in keys {
        h.update(&(key.len() as u32).to_le_bytes());
        h.update(key.as_bytes());
    }
    h.finalize()
}

/// One key's proof-carrying answer in a snapshot read: the value (or
/// `None` for a proven-absent key) and its Merkle (non-)inclusion proof
/// against the snapshot batch's root.
#[derive(Clone, Debug)]
pub struct ProvenRead {
    pub key: Key,
    pub value: Option<Value>,
    pub proof: MerkleProof,
}

/// What the verifier needs from a batch commitment (a certified batch
/// header, in `transedge-core` terms). The trait keeps this crate
/// independent of the batch wire format: any type that can name the
/// snapshot (cluster, batch, root, LCE, timestamp) and recompute the
/// digest the consensus certificate signs can anchor a verified read.
pub trait BatchCommitment {
    /// Partition the snapshot belongs to.
    fn cluster(&self) -> ClusterId;
    /// Batch the snapshot was cut at.
    fn batch(&self) -> BatchNum;
    /// Merkle root of the partition's tree after that batch.
    fn merkle_root(&self) -> &Digest;
    /// Last Committed Epoch of that batch (round-two freshness floor).
    fn lce(&self) -> Epoch;
    /// Leader-stamped wall clock of the batch (§4.4.2 freshness).
    fn timestamp(&self) -> SimTime;
    /// The digest the cluster's `f+1` accept signatures certify.
    fn certified_digest(&self) -> Digest;
    /// [`changed_keys_digest`] of the batch's changed key set, as
    /// certified by consensus. Defaults to the empty change set so
    /// commitments predating the delta feed (and trivial test
    /// commitments) verify against no-change deltas.
    fn delta_digest(&self) -> Digest {
        changed_keys_digest(&[])
    }
}

/// One batch's entry in the certified commit feed: the certified
/// commitment (which folds the [`changed_keys_digest`] of the batch's
/// changed key set into the digest consensus signs), its `f+1`
/// certificate, and the changed key set itself.
///
/// The delta is a *claim* by whoever relays it; the certificate is the
/// ground truth. [`crate::ReadVerifier::verify_delta`] recomputes the
/// changed-set digest and checks the commitment chain, so a subscriber
/// trusts a delta exactly as much as it trusts a proof-carrying read:
/// not at all until it verifies.
#[derive(Clone, Debug)]
pub struct CertifiedDelta<H> {
    /// The certified batch header the delta belongs to.
    pub commitment: H,
    /// `f+1` consensus certificate over the commitment's digest.
    pub cert: Certificate,
    /// The batch's changed keys, ascending and unique. Must hash to
    /// `commitment.delta_digest()`.
    pub changed: Vec<Key>,
}

impl<H: BatchCommitment> CertifiedDelta<H> {
    /// Batch this delta describes.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }

    /// Does the delta's changed set touch any of `keys`?
    pub fn touches(&self, keys: &[Key]) -> bool {
        keys.iter().any(|k| self.changed.binary_search(k).is_ok())
    }
}

/// A complete proof-carrying response for one partition: the
/// commitment, its consensus certificate, and one [`ProvenRead`] per
/// requested key. Everything in here is either signed or checkable
/// against something signed — an untrusted node can cache, replay, or
/// forward bundles, but not alter them undetected.
#[derive(Clone, Debug)]
pub struct ProofBundle<H> {
    pub commitment: H,
    pub cert: Certificate,
    pub reads: Vec<ProvenRead>,
}

impl<H: BatchCommitment> ProofBundle<H> {
    /// Batch this bundle snapshots.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }

    /// The bundle's answer for `key`, if present.
    pub fn read_for(&self, key: &Key) -> Option<&ProvenRead> {
        self.reads.iter().find(|r| &r.key == key)
    }
}

/// A batch of point reads proven by **one** Merkle multiproof: the
/// proven key set (sorted, deduplicated), one value slot per key
/// (`None` = proven absent), and the deduplicated sibling set that
/// authenticates all of them against the snapshot root at once.
///
/// The body is encoded exactly once, at construction, into a shared
/// [`Bytes`] buffer. Cloning the body — to cache it, replay it, or
/// serve a subset request from a cached superset — is a refcount bump
/// on that buffer, not a re-serialisation: the zero-copy hot path the
/// edge tier's throughput mode rides.
#[derive(Clone, Debug)]
pub struct MultiProofBody {
    /// The proven keys, ascending and unique.
    pub keys: Vec<Key>,
    /// `values[i]` answers `keys[i]`; `None` is a proven absence.
    pub values: Vec<Option<Value>>,
    /// One multiproof covering every key in `keys`.
    pub proof: MultiProof,
    /// The canonical wire encoding, shared by all clones.
    wire: Bytes,
}

impl MultiProofBody {
    /// Build a body and encode it once. `keys` must be sorted and
    /// deduplicated, with one value slot per key.
    pub fn new(keys: Vec<Key>, values: Vec<Option<Value>>, proof: MultiProof) -> Self {
        assert_eq!(keys.len(), values.len(), "one value slot per key");
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys sorted, unique");
        let mut w = WireWriter::with_capacity(64);
        w.put_seq(&keys);
        w.put_seq(&values);
        proof.encode(&mut w);
        let wire = Bytes::from(w.into_bytes());
        MultiProofBody {
            keys,
            values,
            proof,
            wire,
        }
    }

    /// The shared wire image. Cloning the returned handle (or the whole
    /// body) shares the allocation — replaying a cached body costs a
    /// refcount bump.
    pub fn wire_bytes(&self) -> &Bytes {
        &self.wire
    }

    /// Exact wire size, computed structurally (equals
    /// `wire_bytes().len()`).
    pub fn encoded_len(&self) -> usize {
        let keys = 4 + self.keys.iter().map(|k| 4 + k.len()).sum::<usize>();
        let values = 4 + self
            .values
            .iter()
            .map(|v| 1 + v.as_ref().map_or(0, |v| 4 + v.len()))
            .sum::<usize>();
        keys + values + self.proof.encoded_len()
    }

    /// Does this body prove every key in `asked`? (Superset replay:
    /// a cached body can answer any subset of its proven keys.)
    pub fn covers(&self, asked: &[Key]) -> bool {
        asked.iter().all(|k| self.keys.binary_search(k).is_ok())
    }

    /// The proven value slot for `key`, if this body covers it.
    pub fn value_for(&self, key: &Key) -> Option<&Option<Value>> {
        self.keys.binary_search(key).ok().map(|i| &self.values[i])
    }
}

/// A complete multiproof response for one partition: the certified
/// commitment, its consensus certificate, and a [`MultiProofBody`]
/// proving every requested key in one pass. The batched analogue of
/// [`ProofBundle`] — one certificate check plus one joint root
/// recomputation verifies the whole key set.
#[derive(Clone, Debug)]
pub struct MultiProofBundle<H> {
    pub commitment: H,
    pub cert: Certificate,
    pub body: MultiProofBody,
}

impl<H: BatchCommitment> MultiProofBundle<H> {
    /// Batch this bundle snapshots.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }
}

/// A proof-carrying range scan: every committed row of a contiguous
/// tree-order window, plus the Merkle range proof that makes the set
/// *complete* — an untrusted server cannot omit a row in `range`
/// without breaking the proof against the certified root. `range` is
/// the window actually proven; it may be wider than what a client
/// requested (an edge replaying a cached wider scan), and the verifier
/// checks coverage and filters.
#[derive(Clone, Debug)]
pub struct ScanProof {
    /// The proven window, in tree order (bucket indices).
    pub range: ScanRange,
    /// Every committed `(key, value)` in the window at the snapshot
    /// batch, ascending in tree order — one row per proof entry.
    pub rows: Vec<(Key, Value)>,
    /// Completeness proof binding `rows` to the certified root.
    pub proof: RangeProof,
}

impl ScanProof {
    /// Wire-size estimate for the simulator's bandwidth model.
    pub fn encoded_len(&self) -> usize {
        16 + self
            .rows
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>()
            + self.proof.encoded_len()
    }
}

/// A complete verified-scan response for one partition: the certified
/// commitment, its consensus certificate, and the proof-carrying rows.
/// The scan analogue of [`ProofBundle`] — cacheable and replayable by
/// untrusted nodes, alterable by none.
#[derive(Clone, Debug)]
pub struct ScanBundle<H> {
    pub commitment: H,
    pub cert: Certificate,
    pub scan: ScanProof,
}

impl<H: BatchCommitment> ScanBundle<H> {
    /// Batch this scan snapshots.
    pub fn batch(&self) -> BatchNum {
        self.commitment.batch()
    }
}
