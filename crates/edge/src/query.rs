//! The unified typed read-query protocol: one request/response pair for
//! every proof-carrying read shape TransEdge serves.
//!
//! Before this module, each query shape carried its own ad-hoc wire
//! protocol and verifier entry point (point reads, partial assemblies,
//! range scans), and every caller re-implemented snapshot-floor and
//! retry plumbing per shape. A [`ReadQuery`] names all of it in one
//! typed value:
//!
//! * a [`QueryShape`] — point reads over a key set (which may span
//!   partitions) or a range scan over the tree order of one or more
//!   partitions (scatter-gather);
//! * a [`SnapshotPolicy`] — serve the latest snapshot, a pinned batch,
//!   or the earliest snapshot whose LCE reaches a dependency floor
//!   (round two of Algorithm 2, now uniform across shapes: scans get
//!   the same LCE-floor semantics as point reads);
//! * an optional [`PageToken`] — multi-window scans resume from a
//!   bucket bound *pinned to the batch the first window was served at*,
//!   so a paginated scan is one consistent snapshot even when its pages
//!   are served by different untrusted nodes.
//!
//! Servers answer with a [`ReadResponse`]; the single verifier entry
//! point [`crate::ReadVerifier::verify_query`] dispatches to the
//! point/assembled/scan proof checks and enforces the policy and page
//! pins, so an untrusted node cannot splice pages across batches or
//! downgrade a floor without being caught.

use transedge_common::{BatchNum, ClusterId, Epoch, Key, Value};
use transedge_crypto::range::MAX_RANGE_BUCKETS;
use transedge_crypto::ScanRange;
use transedge_obs::TraceContext;

use crate::response::{BatchCommitment, CertifiedDelta, MultiProofBundle, ProofBundle, ScanBundle};

/// Which snapshot a [`ReadQuery`] must be served at.
///
/// # Examples
///
/// ```
/// use transedge_common::Epoch;
/// use transedge_edge::SnapshotPolicy;
///
/// // Round-one reads take whatever is newest…
/// assert!(SnapshotPolicy::Latest.min_lce().is_none());
/// // …round-two reads demand a dependency floor.
/// assert_eq!(SnapshotPolicy::MinEpoch(Epoch(4)).min_lce(), Epoch(4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotPolicy {
    /// The newest snapshot the server has applied.
    Latest,
    /// Exactly the named batch (page continuations and edge fills; the
    /// verifier rejects any other batch as a
    /// [`crate::ReadRejection::SnapshotPinMismatch`]).
    AtBatch(BatchNum),
    /// The earliest snapshot whose LCE is at least this epoch — the
    /// round-two dependency floor of Algorithm 2, applied uniformly to
    /// point reads *and* scans.
    MinEpoch(Epoch),
}

impl SnapshotPolicy {
    /// The LCE floor this policy imposes ([`Epoch::NONE`] when it
    /// imposes none).
    pub fn min_lce(&self) -> Epoch {
        match self {
            SnapshotPolicy::MinEpoch(e) => *e,
            _ => Epoch::NONE,
        }
    }

    /// The exact batch this policy pins, if any.
    pub fn pinned_batch(&self) -> Option<BatchNum> {
        match self {
            SnapshotPolicy::AtBatch(b) => Some(*b),
            _ => None,
        }
    }
}

/// What a [`ReadQuery`] asks for: point reads or a range scan.
///
/// # Examples
///
/// ```
/// use transedge_common::{ClusterId, Key};
/// use transedge_crypto::ScanRange;
/// use transedge_edge::QueryShape;
///
/// let point = QueryShape::Point { keys: vec![Key::from_u32(7)] };
/// let scan = QueryShape::Scan {
///     clusters: vec![ClusterId(0), ClusterId(1)], // scatter-gather
///     range: ScanRange::new(0, 1023),
///     window: 256, // served as four consecutive pages per cluster
/// };
/// assert!(matches!(point, QueryShape::Point { .. }));
/// assert!(matches!(scan, QueryShape::Scan { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryShape {
    /// Snapshot point reads. Keys may span partitions — the client's
    /// session plans one sub-query per partition and stitches the
    /// verified answers (with a cross-partition dependency check).
    Point { keys: Vec<Key> },
    /// A verified range scan of the same tree-order window on each
    /// named partition (scatter-gather when more than one). A `range`
    /// wider than `window` buckets is served as consecutive pages, each
    /// at most `window` (and never more than
    /// [`MAX_RANGE_BUCKETS`]) wide, pinned to one
    /// snapshot via [`PageToken`].
    Scan {
        clusters: Vec<ClusterId>,
        range: ScanRange,
        /// Maximum buckets per page (clamped to `1..=MAX_RANGE_BUCKETS`).
        window: u64,
    },
}

/// Resume bound for a multi-window scan: the batch the scan is pinned
/// to and the first bucket of the next page.
///
/// The token is what keeps pagination snapshot-consistent across pages
/// served by *different untrusted nodes*: the verifier rejects a page
/// at any batch other than `batch` (no splice across batches) and a
/// token whose `resume` has been moved outside the query's remaining
/// range (no silent replay of already-scanned buckets).
///
/// # Examples
///
/// ```
/// use transedge_common::BatchNum;
/// use transedge_edge::PageToken;
///
/// let token = PageToken { batch: BatchNum(3), resume: 256 };
/// assert_eq!(token.batch, BatchNum(3));
/// assert_eq!(token.resume, 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageToken {
    /// Batch the first page was served (and verified) at; every later
    /// page must be served at exactly this batch.
    pub batch: BatchNum,
    /// First tree-order bucket of the next page.
    pub resume: u64,
}

/// Resume-from-verified-prefix marker: the client already holds
/// verified rows for buckets `[range.first, through]` of the scan —
/// from a snapshot the query's floor has since outgrown — and asks the
/// server to *re-prove* that prefix at the new snapshot **without
/// resending its rows**, extending it by one fresh page.
///
/// The server answers with a proof covering
/// `[range.first, min(through + window, range.last)]` whose rows are
/// filtered to buckets past `through`; the verifier matches the
/// prefix's proof entries against the *held* rows instead
/// ([`crate::ReadVerifier::verify_query_resuming`]). Matching entries
/// carry the prefix over to the new snapshot for free; any divergence
/// (the data legitimately changed between batches) is reported as
/// [`crate::ReadRejection::PrefixDiverged`] — not a byzantine signal —
/// and the client restarts the partition from page one.
///
/// This is what lets a mid-scan dependency-floor raise (the floor only
/// pins a *newer* batch) skip re-downloading and re-hashing every
/// already-verified page of a long scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefixResume {
    /// Last tree-order bucket of the held, already-verified prefix.
    pub through: u64,
}

/// One typed read query: shape, snapshot policy, and (for scan
/// continuations) the page to resume from. The single client-facing
/// entry point of the proof-carrying read protocol.
///
/// # Examples
///
/// ```
/// use transedge_common::{ClusterId, Epoch, Key};
/// use transedge_crypto::ScanRange;
/// use transedge_edge::{ReadQuery, SnapshotPolicy};
///
/// // A snapshot point read (keys may span partitions).
/// let rot = ReadQuery::point(vec![Key::from_u32(1), Key::from_u32(2)]);
/// assert!(rot.page.is_none());
///
/// // A paginated scatter-gather scan with a round-2 LCE floor.
/// let scan = ReadQuery::scatter_scan(
///     vec![ClusterId(0), ClusterId(1)],
///     ScanRange::new(0, 511),
///     128,
/// )
/// .with_policy(SnapshotPolicy::MinEpoch(Epoch(0)));
/// assert_eq!(scan.scan_window().unwrap(), ScanRange::new(0, 127));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadQuery {
    /// Which snapshot must serve the query.
    pub consistency: SnapshotPolicy,
    /// What is being read.
    pub shape: QueryShape,
    /// Scan continuation: resume from this page, pinned to its batch.
    pub page: Option<PageToken>,
    /// Scan restart at a raised floor: re-prove (without resending) the
    /// already-verified prefix at the new snapshot. Mutually exclusive
    /// with `page` (a prefix query *establishes* the new pin; pages
    /// continue from its token). Ignored for point shapes.
    pub prefix: Option<PrefixResume>,
    /// Subscription mode: ask the serving edge to attach its verified
    /// delta-feed tail as a freshness certificate
    /// ([`ReadResponse::Point`]/[`ReadResponse::Multi`]'s `fresh`
    /// field), proving the served values unchanged through the feed
    /// head. Ignored for scan shapes.
    pub fresh: bool,
    /// Causal-trace propagation context: the client operation this
    /// query serves and the span that caused this hop. Purely
    /// observational — servers never branch on it.
    pub trace: Option<TraceContext>,
}

impl ReadQuery {
    /// A point read of `keys` at the latest snapshot (the classic
    /// round-one ROT request).
    pub fn point(keys: Vec<Key>) -> Self {
        ReadQuery {
            consistency: SnapshotPolicy::Latest,
            shape: QueryShape::Point { keys },
            page: None,
            prefix: None,
            fresh: false,
            trace: None,
        }
    }

    /// A single-partition scan of `range` at the latest snapshot,
    /// served in one window (the classic verified scan).
    pub fn scan(cluster: ClusterId, range: ScanRange) -> Self {
        Self::scatter_scan(vec![cluster], range, MAX_RANGE_BUCKETS)
    }

    /// A scan of the same `range` on every cluster in `clusters`
    /// (scatter-gather), paginated into windows of at most `window`
    /// buckets.
    pub fn scatter_scan(clusters: Vec<ClusterId>, range: ScanRange, window: u64) -> Self {
        ReadQuery {
            consistency: SnapshotPolicy::Latest,
            shape: QueryShape::Scan {
                clusters,
                range,
                window,
            },
            page: None,
            prefix: None,
            fresh: false,
            trace: None,
        }
    }

    /// Replace the snapshot policy (builder style).
    pub fn with_policy(mut self, policy: SnapshotPolicy) -> Self {
        self.consistency = policy;
        self
    }

    /// Continue a paginated scan from `token` (builder style).
    pub fn with_page(mut self, token: PageToken) -> Self {
        self.page = Some(token);
        self
    }

    /// Restart a scan at a raised floor, carrying the verified prefix
    /// through bucket `through` (builder style; clears any page token —
    /// the prefix response re-pins the snapshot).
    pub fn with_prefix(mut self, through: u64) -> Self {
        self.page = None;
        self.prefix = Some(PrefixResume { through });
        self
    }

    /// Ask the serving edge to attach its delta-feed tail as a
    /// freshness certificate (builder style; subscription mode).
    pub fn with_feed_freshness(mut self) -> Self {
        self.fresh = true;
        self
    }

    /// Attach a causal-trace propagation context (builder style).
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The exact batch this query is pinned to, if any: a page token's
    /// batch wins over an [`SnapshotPolicy::AtBatch`] policy.
    pub fn pinned_batch(&self) -> Option<BatchNum> {
        self.page
            .as_ref()
            .map(|t| t.batch)
            .or_else(|| self.consistency.pinned_batch())
    }

    /// The LCE floor imposed by the snapshot policy.
    pub fn min_lce(&self) -> Epoch {
        self.consistency.min_lce()
    }

    /// The effective window of the *current page* of a scan query:
    /// starts at the page token's resume bound (or the range start for
    /// the first page) and extends at most `window` buckets, clamped to
    /// the query range and the protocol cap. `None` for point queries
    /// and for tokens whose resume bound lies outside the range.
    ///
    /// For a prefix-resume query the window is the *proven* window —
    /// the whole held prefix plus one fresh page — while
    /// [`ReadQuery::fresh_rows_from`] names the bucket bound servers
    /// filter returned rows to.
    pub fn scan_window(&self) -> Option<ScanRange> {
        let QueryShape::Scan { range, window, .. } = &self.shape else {
            return None;
        };
        let width = (*window).clamp(1, MAX_RANGE_BUCKETS);
        if let (Some(prefix), None) = (&self.prefix, &self.page) {
            if prefix.through < range.first || prefix.through > range.last {
                return None;
            }
            return Some(ScanRange::new(
                range.first,
                range.last.min(prefix.through.saturating_add(width)),
            ));
        }
        let start = self.page.as_ref().map_or(range.first, |t| t.resume);
        if start < range.first || start > range.last {
            return None;
        }
        Some(ScanRange::new(
            start,
            range.last.min(start.saturating_add(width - 1)),
        ))
    }

    /// For a prefix-resume scan: the bucket bound past which the server
    /// must return rows (the held prefix's rows are *not* resent; its
    /// buckets are covered by the proof alone). `None` for everything
    /// else — all rows of the window are returned.
    pub fn fresh_rows_from(&self) -> Option<u64> {
        match (&self.prefix, &self.page) {
            (Some(prefix), None) => Some(prefix.through),
            _ => None,
        }
    }

    /// Will this query take more than one page per partition?
    pub fn is_paginated(&self) -> bool {
        match &self.shape {
            QueryShape::Scan { range, window, .. } => {
                range.width() > (*window).clamp(1, MAX_RANGE_BUCKETS)
            }
            QueryShape::Point { .. } => false,
        }
    }

    /// Clusters a scan scatters over (empty for point queries, whose
    /// partitions are derived from the keys by the planner).
    pub fn scan_clusters(&self) -> &[ClusterId] {
        match &self.shape {
            QueryShape::Scan { clusters, .. } => clusters,
            QueryShape::Point { .. } => &[],
        }
    }

    /// Wire-size estimate for the simulator's bandwidth model, computed
    /// structurally from the shape (keys, scan bounds, window), the
    /// policy, and the page token — never a flat constant.
    pub fn wire_size(&self) -> usize {
        let policy = match self.consistency {
            SnapshotPolicy::Latest => 1,
            SnapshotPolicy::AtBatch(_) | SnapshotPolicy::MinEpoch(_) => 9,
        };
        let page = if self.page.is_some() { 17 } else { 1 };
        let prefix = if self.prefix.is_some() { 9 } else { 1 };
        let fresh = 1;
        // Trace context rides along as two u64 ids when present.
        let trace = if self.trace.is_some() { 17 } else { 1 };
        let shape = match &self.shape {
            QueryShape::Point { keys } => 4 + keys.iter().map(|k| k.len() + 4).sum::<usize>(),
            QueryShape::Scan { clusters, .. } => 4 + clusters.len() * 2 + 16 + 8,
        };
        policy + page + prefix + fresh + trace + shape
    }
}

/// The payload an untrusted node answers a [`ReadQuery`] with. Every
/// variant is proof-carrying — clients verify it end to end via
/// [`crate::ReadVerifier::verify_query`].
///
/// # Examples
///
/// ```
/// use transedge_edge::ReadResponse;
///
/// fn describe<H>(r: &ReadResponse<H>) -> &'static str {
///     match r {
///         ReadResponse::Point { .. } => "point sections",
///         ReadResponse::Multi { .. } => "one multiproof for all keys",
///         ReadResponse::Scan { .. } => "scan window",
///         ReadResponse::Gather { .. } => "stitched per-partition parts",
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub enum ReadResponse<H> {
    /// Point-read sections: one for a plain response, several for an
    /// edge's partial assembly (each verified against its own certified
    /// root, all pinned to one batch). `fresh`, when present, is the
    /// serving edge's delta-feed tail from the served batch to its feed
    /// head — a freshness certificate proving the served values current
    /// through the head (`Some(vec![])` claims the served batch *is*
    /// the head). Verified end to end like everything else; an
    /// invalid or key-touching feed is cryptographic evidence.
    Point {
        sections: Vec<ProofBundle<H>>,
        fresh: Option<Vec<CertifiedDelta<H>>>,
    },
    /// A batched point read proven by one Merkle multiproof: every
    /// requested key (possibly a subset of the proven set — an edge
    /// replaying a cached superset) authenticated by one deduplicated
    /// sibling set and one certificate check. Boxed like scans: the
    /// body dwarfs the enum's other point payloads. `fresh` as in
    /// [`ReadResponse::Point`].
    Multi {
        bundle: Box<MultiProofBundle<H>>,
        fresh: Option<Vec<CertifiedDelta<H>>>,
    },
    /// One proof-carrying scan window (possibly wider than requested —
    /// a replayed covering window; the verifier filters). Boxed: scan
    /// bundles dwarf the other payloads.
    Scan { bundle: Box<ScanBundle<H>> },
    /// Edge-tier scatter-gather: one section per partition of a
    /// cross-partition query, stitched by the single edge the client
    /// contacted. Each part is verified independently against *its own*
    /// partition's certified root — the stitching edge is an untrusted
    /// courier, nothing more. Parts must not nest further gathers (a
    /// nested gather fails the per-part shape check).
    Gather { parts: Vec<GatherPart<H>> },
}

/// One partition's slice of a [`ReadResponse::Gather`].
#[derive(Clone, Debug)]
pub struct GatherPart<H> {
    /// Partition this part answers for.
    pub cluster: ClusterId,
    /// The partition's own proof-carrying payload.
    pub body: ReadResponse<H>,
}

impl<H: BatchCommitment> ReadResponse<H> {
    /// The snapshot batch this response claims to serve, if it carries
    /// any section at all. (Gathers span partitions with independent
    /// batch spaces; their first part's claim is reported.)
    pub fn batch(&self) -> Option<BatchNum> {
        match self {
            ReadResponse::Point { sections, .. } => sections.first().map(|s| s.batch()),
            ReadResponse::Multi { bundle, .. } => Some(bundle.batch()),
            ReadResponse::Scan { bundle } => Some(bundle.batch()),
            ReadResponse::Gather { parts } => parts.first().and_then(|p| p.body.batch()),
        }
    }

    /// The freshness feed attached to this response, if any.
    pub fn fresh_feed(&self) -> Option<&[CertifiedDelta<H>]> {
        match self {
            ReadResponse::Point { fresh, .. } | ReadResponse::Multi { fresh, .. } => {
                fresh.as_deref()
            }
            _ => None,
        }
    }
}

/// A verified answer to one per-partition sub-query, produced by
/// [`crate::ReadVerifier::verify_query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryAnswer {
    /// Point reads: `(key, value)` in request order, absent keys proven
    /// absent.
    Values(Vec<(Key, Option<Value>)>),
    /// One verified scan page: the complete committed rows of the page
    /// window, plus the token for the next page (`None` when the range
    /// is exhausted).
    Rows {
        rows: Vec<(Key, Value)>,
        next: Option<PageToken>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_window_pages_through_the_range() {
        let q = ReadQuery::scatter_scan(vec![ClusterId(0)], ScanRange::new(0, 1023), 256);
        assert!(q.is_paginated());
        assert_eq!(q.scan_window(), Some(ScanRange::new(0, 255)));
        let page2 = q.clone().with_page(PageToken {
            batch: BatchNum(5),
            resume: 256,
        });
        assert_eq!(page2.scan_window(), Some(ScanRange::new(256, 511)));
        assert_eq!(page2.pinned_batch(), Some(BatchNum(5)));
        // The final page is clamped to the range end.
        let last = q.clone().with_page(PageToken {
            batch: BatchNum(5),
            resume: 1000,
        });
        assert_eq!(last.scan_window(), Some(ScanRange::new(1000, 1023)));
        // A resume bound outside the range has no window.
        let bad = q.with_page(PageToken {
            batch: BatchNum(5),
            resume: 2048,
        });
        assert_eq!(bad.scan_window(), None);
    }

    #[test]
    fn window_clamps_to_protocol_cap() {
        let q = ReadQuery::scatter_scan(
            vec![ClusterId(0)],
            ScanRange::new(0, 3 * MAX_RANGE_BUCKETS),
            u64::MAX,
        );
        assert_eq!(
            q.scan_window(),
            Some(ScanRange::new(0, MAX_RANGE_BUCKETS - 1))
        );
        assert!(q.is_paginated());
        // A zero window still makes progress.
        let tiny = ReadQuery::scatter_scan(vec![ClusterId(0)], ScanRange::new(4, 9), 0);
        assert_eq!(tiny.scan_window(), Some(ScanRange::new(4, 4)));
    }

    #[test]
    fn wire_size_scales_with_shape() {
        let small = ReadQuery::point(vec![Key::from_u32(1)]);
        let large = ReadQuery::point((0..100).map(Key::from_u32).collect());
        assert!(large.wire_size() > small.wire_size());
        let scan = ReadQuery::scan(ClusterId(0), ScanRange::new(0, 63));
        // Scan sizes account for the range bounds, not a flat constant.
        assert!(scan.wire_size() >= 16 + 8);
        let scatter = ReadQuery::scatter_scan(
            vec![ClusterId(0), ClusterId(1), ClusterId(2)],
            ScanRange::new(0, 63),
            64,
        );
        assert!(scatter.wire_size() > scan.wire_size());
        let paged = scan.clone().with_page(PageToken {
            batch: BatchNum(1),
            resume: 32,
        });
        assert!(paged.wire_size() > scan.wire_size());
    }

    #[test]
    fn policy_floors_and_pins() {
        assert_eq!(SnapshotPolicy::Latest.pinned_batch(), None);
        assert_eq!(
            SnapshotPolicy::AtBatch(BatchNum(7)).pinned_batch(),
            Some(BatchNum(7))
        );
        assert_eq!(SnapshotPolicy::MinEpoch(Epoch(3)).min_lce(), Epoch(3));
        // A page token's pin wins over the policy's.
        let q = ReadQuery::scan(ClusterId(0), ScanRange::new(0, 7))
            .with_policy(SnapshotPolicy::AtBatch(BatchNum(1)))
            .with_page(PageToken {
                batch: BatchNum(2),
                resume: 4,
            });
        assert_eq!(q.pinned_batch(), Some(BatchNum(2)));
    }
}
