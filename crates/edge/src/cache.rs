//! LRU cache with hit/miss accounting.
//!
//! Snapshot reads are keyed by `(Key, BatchNum)` and immutable once
//! committed, so cache entries never need invalidation — only eviction
//! for capacity. The recency index is a `BTreeMap` keyed by a monotonic
//! tick, giving `O(log n)` touch/evict without unsafe code.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Counters the harnesses read to judge cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl transedge_obs::RegisterMetrics for CacheStats {
    fn register_metrics(&self, scope: &str, reg: &mut transedge_obs::MetricRegistry) {
        reg.counter(scope, "cache.hits", self.hits);
        reg.counter(scope, "cache.misses", self.misses);
        reg.counter(scope, "cache.insertions", self.insertions);
        reg.counter(scope, "cache.evictions", self.evictions);
    }
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded least-recently-used map.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    /// key → (recency tick, value)
    map: HashMap<K, (u64, V)>,
    /// recency tick → key (oldest first)
    recency: BTreeMap<u64, K>,
    tick: u64,
    pub stats: CacheStats,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// `capacity` of 0 disables caching (every get is a miss).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, bumping its recency and the hit/miss counters.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some((when, _)) => {
                self.recency.remove(when);
                *when = tick;
                self.recency.insert(tick, key.clone());
                self.stats.hits += 1;
                self.map.get(key).map(|(_, v)| v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(_, v)| v)
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or refresh) an entry, evicting the least recently used
    /// entry if over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((when, _)) = self.map.get(&key) {
            self.recency.remove(when);
        } else {
            self.stats.insertions += 1;
        }
        self.map.insert(key.clone(), (tick, value));
        self.recency.insert(tick, key);
        while self.map.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("recency tracks map");
            let victim = self.recency.remove(&oldest).expect("tick present");
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Drop every entry for which `pred` returns false.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &V) -> bool) {
        let recency = &mut self.recency;
        self.map.retain(|k, (when, v)| {
            let keep = pred(k, v);
            if !keep {
                recency.remove(when);
            }
            keep
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_misses_and_counters() {
        let mut c: LruCache<u32, &str> = LruCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.insertions, 1);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            c.insert(i, i * 10);
        }
        // Touch 0 so 1 becomes the LRU.
        assert_eq!(c.get(&0), Some(&0));
        c.insert(3, 30);
        assert!(c.contains(&0));
        assert!(!c.contains(&1), "LRU entry 1 must be evicted");
        assert!(c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.stats.insertions, 1, "refresh is not a new insertion");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn retain_drops_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i);
        }
        c.retain(|k, _| k % 2 == 0);
        assert_eq!(c.len(), 3);
        assert!(c.contains(&0) && c.contains(&2) && c.contains(&4));
        // Eviction order still works after retain.
        c.insert(10, 10);
        c.insert(11, 11);
        assert_eq!(c.len(), 5);
    }
}
