//! # transedge-edge
//!
//! The proof-carrying edge read subsystem: everything between a
//! replica's versioned store and a client accepting a snapshot read
//! from an **untrusted** node, packaged as a reusable layer.
//!
//! TransEdge's headline property (paper §3–§4) is that read-only
//! transactions are served by *single, untrusted* nodes, and clients
//! verify what they get against cryptographic commitments: a Merkle
//! (non-)inclusion proof per key, chained to a batch root, chained to
//! an `f+1`-signed consensus certificate. WedgeChain's lazy-trust
//! edge/cloud split and Axiograph's "untrusted engines compute, a small
//! trusted checker verifies" design argue for isolating exactly that
//! boundary — this crate is that boundary:
//!
//! * [`pipeline`] — the serving side. [`pipeline::SnapshotSource`]
//!   abstracts a replica's multi-version store + versioned Merkle tree;
//!   [`pipeline::ReadPipeline`] assembles [`ProvenRead`]s from it,
//!   memoising per-`(key, batch)` proofs in an LRU cache (snapshot
//!   reads are immutable, so cached entries never go stale).
//! * [`cache`] — the LRU cache with hit/miss/eviction counters, also
//!   used stand-alone by edge replay nodes.
//! * [`replay`] — the store-free serving side: an edge cache node that
//!   holds no partition state and no keys, only certified response
//!   fragments it absorbed from upstream, replayed to clients who
//!   verify them end to end.
//! * [`query`] — the unified typed read protocol: one
//!   [`query::ReadQuery`] ([`query::SnapshotPolicy`] ×
//!   [`query::QueryShape`] × [`query::PageToken`]) names every read
//!   shape — point reads, LCE-floored round-2 fetches, verified scans,
//!   paginated multi-window scans, scatter-gather sub-queries — and
//!   one [`query::ReadResponse`] answers it.
//! * [`verifier`] — the trusted-side checker. [`verifier::ReadVerifier`]
//!   accepts a response only after proof → root → certificate →
//!   freshness → snapshot-epoch checks all pass; everything an edge
//!   node could forge is caught here and reported as a
//!   [`verifier::ReadRejection`]. Its `verify_query` entry point
//!   dispatches a [`query::ReadQuery`] to the right proof chain and
//!   enforces snapshot pins and page tokens on top.
//!
//! Point reads and range scans share the same shape: [`ScanProof`] /
//! [`ScanBundle`] are the scan analogues of [`ProvenRead`] /
//! [`ProofBundle`], with a Merkle *range* proof
//! (`transedge_crypto::range`) standing in for per-key proofs so the
//! verifier can check **completeness** — an untrusted node cannot omit
//! a row inside a scanned window undetected.
//!
//! Throughput mode adds a third proof shape: [`MultiProofBody`] /
//! [`MultiProofBundle`] batch many point reads behind **one**
//! deduplicated Merkle multiproof, encoded exactly once into a shared
//! byte buffer — caching, replaying, or subset-serving a body is a
//! refcount bump, not a re-serialisation. The serving pipeline
//! coalesces concurrent reads pinned to the same batch into one body
//! ([`ReadPipeline::serve_multi`]), and
//! [`replay::ShardedReplayCache`] spreads an edge's per-partition
//! replay caches over cluster-hash shards so the hot read path stops
//! funnelling through one structure.
//!
//! The crate deliberately does not know about network messages or the
//! batch format: commitments enter through the [`BatchCommitment`]
//! trait, which `transedge-core` implements for its certified batch
//! headers. That keeps the trust boundary auditable in one place and
//! lets the read path scale (more edge nodes, bigger caches)
//! independently of the transaction-processing stack.

pub mod cache;
pub mod persist;
pub mod pipeline;
pub mod query;
pub mod replay;
pub mod response;
pub mod verifier;

pub use cache::{CacheStats, LruCache};
pub use persist::{
    is_stale_only, readmit, verify_object, HeadRecord, HydrateReject, PersistPlan, PersistStats,
    SnapshotObject, SnapshotStore, DEFAULT_SPILL_THRESHOLD,
};
pub use pipeline::{
    multi_snapshot, read_snapshot, scan_snapshot, ReadPipeline, SnapshotSource, MAX_COALESCED_KEYS,
};
pub use query::{
    GatherPart, PageToken, PrefixResume, QueryAnswer, QueryShape, ReadQuery, ReadResponse,
    SnapshotPolicy,
};
pub use replay::{
    Assembly, ReplayCache, ReplayStats, ShardedReplayCache, DEFAULT_SHARD_COUNT, MAX_FEED_DELTAS,
};
pub use response::{
    changed_keys_digest, BatchCommitment, CertifiedDelta, MultiProofBody, MultiProofBundle,
    ProofBundle, ProvenRead, ScanBundle, ScanProof,
};
pub use verifier::{ReadRejection, ReadVerifier, VerifyParams};
