//! # transedge-storage
//!
//! Replica-local storage for TransEdge:
//!
//! * [`VersionedStore`] — a multi-version key-value map. Every write is
//!   tagged with the batch number in which it committed, so replicas
//!   can serve both "latest" reads (ordinary transactions) and
//!   "as-of-batch-`i`" snapshot reads (round two of the distributed
//!   read-only protocol, paper §4.3.4).
//! * [`BatchArchive`] — the append-only history of decided batches,
//!   from which historical batch metadata (Merkle roots, CD vectors,
//!   certificates) is served.
//!
//! Multi-versioning is what makes the paper's *non-interference*
//! property implementable: read-only transactions read committed
//! versions and never take locks, so they cannot block or abort
//! read-write transactions (§4, "non-interference").

pub mod archive;
pub mod mvstore;

pub use archive::BatchArchive;
pub use mvstore::VersionedStore;
