//! # transedge-storage
//!
//! Replica-local storage for TransEdge:
//!
//! * [`VersionedStore`] — a multi-version key-value map. Every write is
//!   tagged with the batch number in which it committed, so replicas
//!   can serve both "latest" reads (ordinary transactions) and
//!   "as-of-batch-`i`" snapshot reads (round two of the distributed
//!   read-only protocol, paper §4.3.4).
//! * [`BatchArchive`] — the append-only history of decided batches,
//!   from which historical batch metadata (Merkle roots, CD vectors,
//!   certificates) is served.
//! * [`ObjectArchive`] — an append-only, content-addressed object
//!   archive: the durable backing of the edge persistence plane.
//!   Objects are keyed by a digest of their own content, so the store
//!   deduplicates for free and readers can detect corruption by
//!   recomputing the digest. What it holds is **untrusted input** —
//!   edge restart hydration re-verifies every object through the
//!   client-grade verifier before serving it.
//!
//! Multi-versioning is what makes the paper's *non-interference*
//! property implementable: read-only transactions read committed
//! versions and never take locks, so they cannot block or abort
//! read-write transactions (§4, "non-interference").

pub mod archive;
pub mod mvstore;
pub mod object_store;

pub use archive::BatchArchive;
pub use mvstore::VersionedStore;
pub use object_store::{ObjectArchive, ObjectArchiveStats};
