//! Append-only batch history.
//!
//! Replicas keep every decided batch so they can (a) serve historical
//! batch metadata in round two of the read-only protocol, (b) bring
//! lagging replicas up to date, and (c) let auditors replay the log.

use transedge_common::BatchNum;

/// Dense, append-only sequence of decided batches. Generic over the
/// batch payload so the consensus crate (which stores raw decided
/// values) and the core crate (which stores full TransEdge batches) can
/// share it.
#[derive(Clone, Debug, Default)]
pub struct BatchArchive<B> {
    batches: Vec<B>,
}

impl<B> BatchArchive<B> {
    pub fn new() -> Self {
        BatchArchive {
            batches: Vec::new(),
        }
    }

    /// Append the batch with the given number; numbers must be dense
    /// and in order (the SMR log admits no gaps — "batches are written
    /// one-by-one", paper §3.1).
    pub fn append(&mut self, num: BatchNum, batch: B) {
        assert_eq!(
            num.0 as usize,
            self.batches.len(),
            "archive gap: appending {num} at position {}",
            self.batches.len()
        );
        self.batches.push(batch);
    }

    pub fn get(&self, num: BatchNum) -> Option<&B> {
        self.batches.get(num.0 as usize)
    }

    /// Latest decided batch, if any.
    pub fn latest(&self) -> Option<(BatchNum, &B)> {
        let last = self.batches.last()?;
        Some((BatchNum(self.batches.len() as u64 - 1), last))
    }

    /// Next batch number to be decided.
    pub fn next_num(&self) -> BatchNum {
        BatchNum(self.batches.len() as u64)
    }

    pub fn len(&self) -> usize {
        self.batches.len()
    }

    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Iterate `(number, batch)` in log order.
    pub fn iter(&self) -> impl Iterator<Item = (BatchNum, &B)> {
        self.batches
            .iter()
            .enumerate()
            .map(|(i, b)| (BatchNum(i as u64), b))
    }

    /// Batches in `[from, to)` — used for state transfer to lagging
    /// replicas.
    pub fn range(&self, from: BatchNum, to: BatchNum) -> &[B] {
        let lo = (from.0 as usize).min(self.batches.len());
        let hi = (to.0 as usize).min(self.batches.len());
        &self.batches[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get() {
        let mut a = BatchArchive::new();
        assert!(a.is_empty());
        assert_eq!(a.next_num(), BatchNum(0));
        a.append(BatchNum(0), "b0");
        a.append(BatchNum(1), "b1");
        assert_eq!(a.get(BatchNum(0)), Some(&"b0"));
        assert_eq!(a.get(BatchNum(1)), Some(&"b1"));
        assert_eq!(a.get(BatchNum(2)), None);
        assert_eq!(a.latest(), Some((BatchNum(1), &"b1")));
        assert_eq!(a.next_num(), BatchNum(2));
    }

    #[test]
    #[should_panic(expected = "archive gap")]
    fn gaps_panic() {
        let mut a = BatchArchive::new();
        a.append(BatchNum(1), "b1");
    }

    #[test]
    fn iteration_in_order() {
        let mut a = BatchArchive::new();
        for i in 0..5 {
            a.append(BatchNum(i), i * 10);
        }
        let collected: Vec<_> = a.iter().map(|(n, b)| (n.0, *b)).collect();
        assert_eq!(collected, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    }

    #[test]
    fn range_clamps() {
        let mut a = BatchArchive::new();
        for i in 0..4 {
            a.append(BatchNum(i), i);
        }
        assert_eq!(a.range(BatchNum(1), BatchNum(3)), &[1, 2]);
        assert_eq!(a.range(BatchNum(2), BatchNum(100)), &[2, 3]);
        assert_eq!(a.range(BatchNum(5), BatchNum(9)), &[] as &[u64]);
    }
}
