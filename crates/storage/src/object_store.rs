//! Append-only, content-addressed object archive — the durable backing
//! of the edge persistence plane.
//!
//! Objects are keyed by a digest of their own content (the caller
//! computes it; this module never inspects the payload), so the archive
//! is naturally deduplicating and *self-checking*: a reader that
//! recomputes an object's digest and compares it against the key it was
//! stored under detects any on-disk corruption of the payload. Writes
//! never mutate an existing object — like [`crate::BatchArchive`], the
//! object space only grows (until explicitly pruned by the owner's
//! retention policy), which is what makes crash-consistency trivial:
//! there is no partially-overwritten state to recover, only objects
//! that either exist in full or do not.
//!
//! The archive deliberately stores **untrusted** bytes. Nothing read
//! back from it may be served until it has been re-admitted through the
//! client-grade verifier — the trust model is identical to receiving
//! the object from an untrusted network peer.

use std::collections::HashMap;

use transedge_crypto::Digest;

/// Counters for the archive (the owner's persistence stats absorb
/// these).
#[derive(Clone, Copy, Debug, Default)]
pub struct ObjectArchiveStats {
    /// Objects appended (first write of a digest).
    pub written: u64,
    /// Writes dropped because the digest was already present
    /// (content-addressing makes re-persisting a replayed object free).
    pub deduped: u64,
    /// Objects removed by the owner's retention policy.
    pub pruned: u64,
}

impl transedge_obs::RegisterMetrics for ObjectArchiveStats {
    fn register_metrics(&self, scope: &str, reg: &mut transedge_obs::MetricRegistry) {
        reg.counter(scope, "archive.written", self.written);
        reg.counter(scope, "archive.deduped", self.deduped);
        reg.counter(scope, "archive.pruned", self.pruned);
    }
}

/// An append-only map from content digest to object, remembering
/// insertion order so retention can prune oldest-first.
#[derive(Clone, Debug)]
pub struct ObjectArchive<V> {
    objects: HashMap<Digest, V>,
    /// Digests in first-write order (oldest first). Kept alongside the
    /// map so pruning and iteration are deterministic.
    order: Vec<Digest>,
    pub stats: ObjectArchiveStats,
}

impl<V> Default for ObjectArchive<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ObjectArchive<V> {
    pub fn new() -> Self {
        ObjectArchive {
            objects: HashMap::new(),
            order: Vec::new(),
            stats: ObjectArchiveStats::default(),
        }
    }

    /// Append `object` under `digest`. Returns `true` if this was a
    /// first write; `false` if the digest already existed (the object
    /// is left untouched — content addressing means same digest, same
    /// content).
    pub fn put(&mut self, digest: Digest, object: V) -> bool {
        if self.objects.contains_key(&digest) {
            self.stats.deduped += 1;
            return false;
        }
        self.objects.insert(digest, object);
        self.order.push(digest);
        self.stats.written += 1;
        true
    }

    pub fn get(&self, digest: &Digest) -> Option<&V> {
        self.objects.get(digest)
    }

    /// Mutable access to a stored object — a *fault-injection* hook:
    /// real storage never rewrites an object in place, but the
    /// simulator uses this to model on-disk corruption (bit flips under
    /// an unchanged index entry) and assert the verifier gate catches
    /// it.
    pub fn get_mut(&mut self, digest: &Digest) -> Option<&mut V> {
        self.objects.get_mut(digest)
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.objects.contains_key(digest)
    }

    /// Remove `digest` (retention pruning, or dropping an object that
    /// failed re-admission).
    pub fn remove(&mut self, digest: &Digest) -> Option<V> {
        let removed = self.objects.remove(digest);
        if removed.is_some() {
            self.order.retain(|d| d != digest);
            self.stats.pruned += 1;
        }
        removed
    }

    /// Swap the payloads stored under two existing digests — the
    /// *splice* fault-injection hook: both objects remain individually
    /// intact, but each now lives under the other's index entry, which
    /// is exactly what a corrupted or malicious directory block looks
    /// like. Returns `false` (and does nothing) unless both digests
    /// exist.
    pub fn splice(&mut self, a: &Digest, b: &Digest) -> bool {
        if a == b || !self.objects.contains_key(a) || !self.objects.contains_key(b) {
            return false;
        }
        let va = self.objects.remove(a).expect("checked");
        let vb = self.objects.remove(b).expect("checked");
        self.objects.insert(*a, vb);
        self.objects.insert(*b, va);
        true
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Stored objects in first-write order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = (&Digest, &V)> {
        self.order
            .iter()
            .filter_map(|d| self.objects.get(d).map(|v| (d, v)))
    }

    /// Digests in first-write order.
    pub fn digests(&self) -> impl Iterator<Item = &Digest> {
        self.order.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(byte: u8) -> Digest {
        Digest([byte; 32])
    }

    #[test]
    fn put_is_append_only_and_deduplicating() {
        let mut arch: ObjectArchive<&'static str> = ObjectArchive::new();
        assert!(arch.put(d(1), "one"));
        assert!(arch.put(d(2), "two"));
        // Re-writing an existing digest is a no-op: same digest, same
        // content — the original is never overwritten.
        assert!(!arch.put(d(1), "impostor"));
        assert_eq!(arch.get(&d(1)), Some(&"one"));
        assert_eq!(arch.len(), 2);
        assert_eq!(arch.stats.written, 2);
        assert_eq!(arch.stats.deduped, 1);
        let order: Vec<_> = arch.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec!["one", "two"]);
    }

    #[test]
    fn remove_prunes_and_keeps_order() {
        let mut arch: ObjectArchive<u32> = ObjectArchive::new();
        for i in 0..4u8 {
            arch.put(d(i), u32::from(i));
        }
        assert_eq!(arch.remove(&d(1)), Some(1));
        assert_eq!(arch.remove(&d(1)), None);
        assert_eq!(arch.stats.pruned, 1);
        let order: Vec<_> = arch.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![0, 2, 3]);
    }

    #[test]
    fn splice_swaps_payloads_under_unchanged_digests() {
        let mut arch: ObjectArchive<&'static str> = ObjectArchive::new();
        arch.put(d(1), "one");
        arch.put(d(2), "two");
        assert!(arch.splice(&d(1), &d(2)));
        assert_eq!(arch.get(&d(1)), Some(&"two"));
        assert_eq!(arch.get(&d(2)), Some(&"one"));
        assert!(!arch.splice(&d(1), &d(9)), "both digests must exist");
        assert!(!arch.splice(&d(1), &d(1)), "self-splice is meaningless");
    }
}
