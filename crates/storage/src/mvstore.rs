//! Multi-version key-value store.

use std::collections::{BTreeMap, HashMap};
use std::ops::RangeBounds;

use transedge_common::{BatchNum, Key, Value};
use transedge_crypto::{sha256, Digest};

/// One committed version of a key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// Batch in which this write committed.
    pub batch: BatchNum,
    pub value: Value,
}

/// A multi-version map: each key holds its committed versions ordered
/// by ascending batch number. At most one version per key per batch
/// (conflicting writes can never share a batch — Definition 3.1).
#[derive(Clone, Debug, Default)]
pub struct VersionedStore {
    data: HashMap<Key, Vec<Version>>,
    /// Tree-order index: SHA-256(key) → key, ordered by hash. This is
    /// the leaf order of the partition's Merkle tree, so iterating a
    /// contiguous hash interval enumerates exactly the rows a Merkle
    /// range proof commits to. Keys are indexed on first write and
    /// never removed (versions may be truncated, keys never deleted).
    index: BTreeMap<Digest, Key>,
    writes: u64,
}

impl VersionedStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `key = value` committed in `batch`. Panics if a
    /// version for an *earlier* batch is written after a later one —
    /// batches commit in log order, so that would be a protocol bug.
    pub fn write(&mut self, key: Key, value: Value, batch: BatchNum) {
        if !self.data.contains_key(&key) {
            self.index.insert(sha256(key.as_bytes()), key.clone());
        }
        let versions = self.data.entry(key).or_default();
        if let Some(last) = versions.last() {
            assert!(
                batch >= last.batch,
                "out-of-order write: batch {batch} after {}",
                last.batch
            );
            if last.batch == batch {
                // Same batch writing the same key twice: last write wins
                // (a transaction's write-set may be applied as a unit).
                versions.last_mut().unwrap().value = value;
                self.writes += 1;
                return;
            }
        }
        versions.push(Version { batch, value });
        self.writes += 1;
    }

    /// Apply a whole write-set committed in `batch`.
    pub fn apply<'a>(
        &mut self,
        writes: impl IntoIterator<Item = (&'a Key, &'a Value)>,
        batch: BatchNum,
    ) {
        for (k, v) in writes {
            self.write(k.clone(), v.clone(), batch);
        }
    }

    /// Latest committed version of `key`.
    pub fn get_latest(&self, key: &Key) -> Option<&Version> {
        self.data.get(key)?.last()
    }

    /// Latest version committed in a batch `<= batch` — the snapshot
    /// read used by round two of the read-only protocol.
    pub fn get_at(&self, key: &Key, batch: BatchNum) -> Option<&Version> {
        let versions = self.data.get(key)?;
        // Versions are sorted by batch; binary search for the last <= batch.
        let idx = versions.partition_point(|v| v.batch <= batch);
        versions[..idx].last()
    }

    /// Snapshot read: the value of `key` as of the consistent cut at
    /// the end of `batch` (alias of [`VersionedStore::get_at`] under
    /// the read-pipeline's name for it).
    #[inline]
    pub fn read_at(&self, key: &Key, batch: BatchNum) -> Option<&Version> {
        self.get_at(key, batch)
    }

    /// Iterate the whole consistent cut at the end of `batch`: every
    /// key that existed at that point, with the version visible there.
    /// Keys first written after `batch` are absent. Iteration order is
    /// unspecified (it follows the underlying hash map).
    pub fn snapshot_at(&self, batch: BatchNum) -> impl Iterator<Item = (&Key, &Version)> {
        self.data.iter().filter_map(move |(k, versions)| {
            let idx = versions.partition_point(|v| v.batch <= batch);
            versions[..idx].last().map(|v| (k, v))
        })
    }

    /// Ordered range read over the *tree order* (ascending SHA-256 of
    /// key — the leaf order of the partition's Merkle tree): every key
    /// whose hash falls in `hashes` and that is visible at the
    /// consistent cut of `batch`, with the version visible there.
    ///
    /// Unlike [`VersionedStore::snapshot_at`], which walks `O(keys)`
    /// per cut, this is `O(log keys + rows in range)` — the ordered
    /// index narrows straight to the window, so a verified range scan
    /// only pays for what it returns. Callers derive `hashes` from a
    /// `ScanRange` via `ScanRange::digest_bounds`.
    pub fn range_at<R: RangeBounds<Digest>>(
        &self,
        hashes: R,
        batch: BatchNum,
    ) -> impl Iterator<Item = (&Key, &Version)> {
        self.index
            .range(hashes)
            .filter_map(move |(_, key)| self.get_at(key, batch).map(|v| (key, v)))
    }

    /// Batch of the last committed write to `key` (conflict rule 1 of
    /// Definition 3.1: has the read version been overwritten?).
    pub fn last_writer(&self, key: &Key) -> Option<BatchNum> {
        Some(self.get_latest(key)?.batch)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.data.len()
    }

    /// Total writes applied (diagnostics).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Drop versions strictly older than `keep_from`, keeping at least
    /// the newest version of every key. Bounds memory in long runs.
    pub fn truncate_before(&mut self, keep_from: BatchNum) {
        for versions in self.data.values_mut() {
            if versions.len() <= 1 {
                continue;
            }
            let cut = versions
                .partition_point(|v| v.batch < keep_from)
                .min(versions.len() - 1);
            if cut > 0 {
                versions.drain(..cut);
            }
        }
    }

    /// Iterate all keys (test helpers, state transfer).
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.data.keys()
    }

    /// Full version history of a key, oldest first (auditing: the
    /// serializability checker reconstructs per-key write order from
    /// this).
    pub fn versions(&self, key: &Key) -> Option<&[Version]> {
        self.data.get(key).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Key {
        Key::from_u32(i)
    }

    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn latest_and_at_snapshots() {
        let mut s = VersionedStore::new();
        s.write(k(1), v("a"), BatchNum(1));
        s.write(k(1), v("b"), BatchNum(3));
        s.write(k(1), v("c"), BatchNum(7));
        assert_eq!(s.get_latest(&k(1)).unwrap().value, v("c"));
        assert_eq!(s.get_at(&k(1), BatchNum(0)), None);
        assert_eq!(s.get_at(&k(1), BatchNum(1)).unwrap().value, v("a"));
        assert_eq!(s.get_at(&k(1), BatchNum(2)).unwrap().value, v("a"));
        assert_eq!(s.get_at(&k(1), BatchNum(3)).unwrap().value, v("b"));
        assert_eq!(s.get_at(&k(1), BatchNum(100)).unwrap().value, v("c"));
    }

    #[test]
    fn missing_key_reads_none() {
        let s = VersionedStore::new();
        assert_eq!(s.get_latest(&k(9)), None);
        assert_eq!(s.get_at(&k(9), BatchNum(5)), None);
        assert_eq!(s.last_writer(&k(9)), None);
    }

    #[test]
    fn last_writer_tracks_overwrites() {
        let mut s = VersionedStore::new();
        s.write(k(2), v("x"), BatchNum(4));
        assert_eq!(s.last_writer(&k(2)), Some(BatchNum(4)));
        s.write(k(2), v("y"), BatchNum(9));
        assert_eq!(s.last_writer(&k(2)), Some(BatchNum(9)));
    }

    #[test]
    #[should_panic(expected = "out-of-order write")]
    fn out_of_order_write_panics() {
        let mut s = VersionedStore::new();
        s.write(k(1), v("a"), BatchNum(5));
        s.write(k(1), v("b"), BatchNum(4));
    }

    #[test]
    fn same_batch_rewrite_last_write_wins() {
        let mut s = VersionedStore::new();
        s.write(k(1), v("a"), BatchNum(5));
        s.write(k(1), v("b"), BatchNum(5));
        assert_eq!(s.get_latest(&k(1)).unwrap().value, v("b"));
        assert_eq!(s.data[&k(1)].len(), 1);
    }

    #[test]
    fn read_at_matches_get_at() {
        let mut s = VersionedStore::new();
        s.write(k(1), v("a"), BatchNum(1));
        s.write(k(1), v("b"), BatchNum(4));
        assert_eq!(s.read_at(&k(1), BatchNum(3)), s.get_at(&k(1), BatchNum(3)));
        assert_eq!(s.read_at(&k(1), BatchNum(3)).unwrap().value, v("a"));
        assert_eq!(s.read_at(&k(2), BatchNum(9)), None);
    }

    #[test]
    fn snapshot_at_is_a_consistent_cut() {
        let mut s = VersionedStore::new();
        s.write(k(1), v("a1"), BatchNum(1));
        s.write(k(2), v("b1"), BatchNum(1));
        s.write(k(1), v("a2"), BatchNum(3));
        s.write(k(3), v("c3"), BatchNum(3));
        // Cut at batch 1: keys 1 and 2 at their batch-1 versions.
        let mut cut: Vec<(u32, String)> = s
            .snapshot_at(BatchNum(1))
            .map(|(key, ver)| {
                let i = u32::from_be_bytes(key.as_bytes().try_into().unwrap());
                (i, String::from_utf8(ver.value.as_bytes().to_vec()).unwrap())
            })
            .collect();
        cut.sort();
        assert_eq!(cut, vec![(1, "a1".into()), (2, "b1".into())]);
        // Cut at batch 3 sees the overwrite and the new key.
        let mut cut3: Vec<(u32, String)> = s
            .snapshot_at(BatchNum(3))
            .map(|(key, ver)| {
                let i = u32::from_be_bytes(key.as_bytes().try_into().unwrap());
                (i, String::from_utf8(ver.value.as_bytes().to_vec()).unwrap())
            })
            .collect();
        cut3.sort();
        assert_eq!(
            cut3,
            vec![(1, "a2".into()), (2, "b1".into()), (3, "c3".into())]
        );
        // Cut before any write is empty.
        assert_eq!(s.snapshot_at(BatchNum(0)).count(), 0);
    }

    #[test]
    fn range_at_follows_tree_order_and_the_cut() {
        let mut s = VersionedStore::new();
        for i in 0..32u32 {
            s.write(k(i), v(&format!("a{i}")), BatchNum(1));
        }
        for i in 0..8u32 {
            s.write(k(i), v(&format!("b{i}")), BatchNum(3));
        }
        s.write(k(100), v("late"), BatchNum(5));
        // Full range at batch 1: all 32 keys, ascending by key hash.
        let rows: Vec<_> = s.range_at(.., BatchNum(1)).collect();
        assert_eq!(rows.len(), 32);
        let hashes: Vec<Digest> = rows.iter().map(|(key, _)| sha256(key.as_bytes())).collect();
        for pair in hashes.windows(2) {
            assert!(pair[0] < pair[1], "rows must ascend in tree order");
        }
        // Cut semantics: batch 2 sees the batch-1 values, batch 3 the
        // overwrites, batch 0 nothing, batch 5 the late key too.
        assert!(s
            .range_at(.., BatchNum(2))
            .all(|(key, ver)| ver.value == v(&format!("a{}", key_u32(key)))));
        assert_eq!(
            s.range_at(.., BatchNum(3))
                .filter(|(key, _)| key_u32(key) < 8)
                .filter(|(_, ver)| ver.batch == BatchNum(3))
                .count(),
            8
        );
        assert_eq!(s.range_at(.., BatchNum(0)).count(), 0);
        assert_eq!(s.range_at(.., BatchNum(5)).count(), 33);
        // A half-open hash window returns exactly the keys inside it.
        let mid = hashes[16];
        let below: Vec<_> = s.range_at(..mid, BatchNum(1)).collect();
        assert_eq!(below.len(), 16);
        let above: Vec<_> = s.range_at(mid.., BatchNum(1)).collect();
        assert_eq!(above.len(), 16);
    }

    fn key_u32(key: &Key) -> u32 {
        u32::from_be_bytes(key.as_bytes().try_into().unwrap())
    }

    #[test]
    fn apply_write_set() {
        let mut s = VersionedStore::new();
        let writes = [(k(1), v("a")), (k(2), v("b"))];
        s.apply(writes.iter().map(|(k, v)| (k, v)), BatchNum(1));
        assert_eq!(s.key_count(), 2);
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn truncate_keeps_newest_version() {
        let mut s = VersionedStore::new();
        for b in 1..=10 {
            s.write(k(1), v(&b.to_string()), BatchNum(b));
        }
        s.write(k(2), v("only"), BatchNum(1));
        s.truncate_before(BatchNum(8));
        // Key 1 keeps versions 8, 9, 10.
        assert_eq!(s.get_at(&k(1), BatchNum(7)), None);
        assert_eq!(s.get_at(&k(1), BatchNum(8)).unwrap().value, v("8"));
        assert_eq!(s.get_latest(&k(1)).unwrap().value, v("10"));
        // Key 2's only version survives even though it's old.
        assert_eq!(s.get_latest(&k(2)).unwrap().value, v("only"));
    }
}
