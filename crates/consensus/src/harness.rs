//! In-memory cluster harness for driving [`BftEngine`]s directly —
//! no simulator, no clocks. Used by this crate's own tests and by the
//! byzantine test-suite; exported because downstream crates reuse it
//! for protocol-level assertions.

use std::collections::{HashMap, VecDeque};

use transedge_common::{BatchNum, ClusterId, ClusterTopology, ReplicaId};
use transedge_crypto::{KeyStore, Keypair};

use crate::engine::{BftConfig, BftEngine, Output};
use crate::messages::{BftMsg, BftValue};

/// A message in flight between two replicas.
pub struct InFlight<V> {
    pub from: ReplicaId,
    pub to: ReplicaId,
    pub msg: BftMsg<V>,
}

/// N engines plus a FIFO network with hooks for dropping / mutating
/// traffic.
pub struct Cluster<V: BftValue> {
    pub topology: ClusterTopology,
    pub cluster_id: ClusterId,
    pub keys: KeyStore,
    pub keypairs: HashMap<ReplicaId, Keypair>,
    engines: HashMap<ReplicaId, BftEngine<V>>,
    pub network: VecDeque<InFlight<V>>,
    /// Every in-order delivery each replica has made: (slot, value).
    pub delivered: HashMap<ReplicaId, Vec<(BatchNum, V)>>,
    /// Replicas that silently ignore all traffic (crash-faulty).
    pub down: Vec<ReplicaId>,
}

impl<V: BftValue> Cluster<V> {
    /// A fresh cluster tolerating `f` faults, keyed deterministically
    /// from `seed`.
    pub fn new(f: u16, seed: u8) -> Self {
        let topology = ClusterTopology::new(1, f).expect("valid topology");
        let cluster_id = ClusterId(0);
        let (keys, keypairs) = KeyStore::for_topology(&topology, &[seed; 32]);
        let mut engines = HashMap::new();
        let mut delivered = HashMap::new();
        for r in topology.replicas_of(cluster_id) {
            let config = BftConfig {
                cluster: cluster_id,
                me: r,
                f: f as usize,
            };
            engines.insert(
                r,
                BftEngine::new(config, keypairs[&r].clone(), keys.clone()),
            );
            delivered.insert(r, Vec::new());
        }
        Cluster {
            topology,
            cluster_id,
            keys,
            keypairs,
            engines,
            network: VecDeque::new(),
            delivered,
            down: Vec::new(),
        }
    }

    pub fn replicas(&self) -> Vec<ReplicaId> {
        self.topology.replicas_of(self.cluster_id).collect()
    }

    pub fn engine(&self, r: ReplicaId) -> &BftEngine<V> {
        &self.engines[&r]
    }

    pub fn engine_mut(&mut self, r: ReplicaId) -> &mut BftEngine<V> {
        self.engines.get_mut(&r).unwrap()
    }

    /// Current leader according to replica 0's view.
    pub fn leader(&self) -> ReplicaId {
        let r0 = self.replicas()[0];
        self.engines[&r0].leader()
    }

    fn enqueue_outputs(&mut self, from: ReplicaId, outputs: Vec<Output<V>>) {
        for output in outputs {
            match output {
                Output::Send(to, msg) => self.network.push_back(InFlight { from, to, msg }),
                Output::Broadcast(msg) => {
                    for to in self.replicas() {
                        if to != from {
                            self.network.push_back(InFlight {
                                from,
                                to,
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                Output::Decided { slot, value, .. } => {
                    self.delivered.get_mut(&from).unwrap().push((slot, value));
                }
                Output::EnteredView { .. } => {}
            }
        }
    }

    /// Leader proposes a value.
    pub fn propose(&mut self, value: V) {
        let leader = self.leader();
        let outputs = self.engines.get_mut(&leader).unwrap().propose(value);
        self.enqueue_outputs(leader, outputs);
    }

    /// Deliver one queued message (front of the FIFO). Returns false if
    /// the network is empty. `filter` may drop (return `None`) or
    /// mutate messages — the byzantine test hook.
    pub fn step_with(&mut self, filter: &mut dyn FnMut(&InFlight<V>) -> Option<BftMsg<V>>) -> bool {
        let Some(inflight) = self.network.pop_front() else {
            return false;
        };
        if self.down.contains(&inflight.to) || self.down.contains(&inflight.from) {
            return true;
        }
        let Some(msg) = filter(&inflight) else {
            return true;
        };
        let to = inflight.to;
        let from = inflight.from;
        let outputs = self
            .engines
            .get_mut(&to)
            .unwrap()
            .handle(from, msg, &mut |_, _| true);
        self.enqueue_outputs(to, outputs);
        // Replay any propose that was buffered while this replica lagged.
        loop {
            let Some((pfrom, pmsg)) = self.engines.get_mut(&to).unwrap().take_pending_propose()
            else {
                break;
            };
            let outputs = self
                .engines
                .get_mut(&to)
                .unwrap()
                .handle(pfrom, pmsg, &mut |_, _| true);
            self.enqueue_outputs(to, outputs);
        }
        true
    }

    /// Run until the network drains (bounded by `max_steps`).
    pub fn run(&mut self, max_steps: usize) {
        let mut steps = 0;
        while self.step_with(&mut |m| Some(m.msg.clone())) {
            steps += 1;
            assert!(steps < max_steps, "network did not quiesce");
        }
    }

    /// Run with a message filter.
    pub fn run_with(
        &mut self,
        max_steps: usize,
        filter: &mut dyn FnMut(&InFlight<V>) -> Option<BftMsg<V>>,
    ) {
        let mut steps = 0;
        while self.step_with(filter) {
            steps += 1;
            assert!(steps < max_steps, "network did not quiesce");
        }
    }

    /// Fire the leader-timeout at every live replica (hosts drive this
    /// with real timers; tests call it directly).
    pub fn timeout_all(&mut self) {
        for r in self.replicas() {
            if self.down.contains(&r) {
                continue;
            }
            let outputs = self.engines.get_mut(&r).unwrap().on_timeout();
            self.enqueue_outputs(r, outputs);
        }
    }

    /// Assert every live replica delivered the same log and return it.
    pub fn assert_agreement(&self) -> Vec<(BatchNum, V)>
    where
        V: PartialEq + std::fmt::Debug,
    {
        let live: Vec<_> = self
            .replicas()
            .into_iter()
            .filter(|r| !self.down.contains(r))
            .collect();
        let reference = &self.delivered[&live[0]];
        for r in &live[1..] {
            assert_eq!(
                &self.delivered[r], reference,
                "replica {r} diverged from {}",
                live[0]
            );
        }
        reference.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(tag: u8) -> Vec<u8> {
        vec![tag; 8]
    }

    #[test]
    fn single_slot_decides_everywhere() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 1);
        cluster.propose(value(1));
        cluster.run(10_000);
        let log = cluster.assert_agreement();
        assert_eq!(log, vec![(BatchNum(0), value(1))]);
    }

    #[test]
    fn sequential_slots_stay_ordered() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 2);
        for i in 0..5 {
            cluster.propose(value(i));
            cluster.run(10_000);
        }
        let log = cluster.assert_agreement();
        assert_eq!(log.len(), 5);
        for (i, (slot, v)) in log.iter().enumerate() {
            assert_eq!(slot.0, i as u64);
            assert_eq!(v, &value(i as u8));
        }
    }

    #[test]
    fn decides_with_f_crashed_replicas() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(2, 3); // 7 replicas
                                                                // Crash 2 non-leader replicas.
        let reps = cluster.replicas();
        cluster.down = vec![reps[5], reps[6]];
        cluster.propose(value(9));
        cluster.run(10_000);
        let log = cluster.assert_agreement();
        assert_eq!(log, vec![(BatchNum(0), value(9))]);
    }

    #[test]
    fn does_not_decide_without_quorum() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 4); // 4 replicas, quorum 3
        let reps = cluster.replicas();
        cluster.down = vec![reps[2], reps[3]]; // only 2 live < quorum
        cluster.propose(value(5));
        cluster.run(10_000);
        for r in [reps[0], reps[1]] {
            assert!(cluster.delivered[&r].is_empty());
        }
    }

    #[test]
    fn f0_is_rejected_by_topology() {
        assert!(ClusterTopology::new(1, 0).is_err());
    }

    #[test]
    fn certificates_verify_for_delivered_slots() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 5);
        cluster.propose(value(7));
        cluster.run(10_000);
        let r0 = cluster.replicas()[0];
        let engine = cluster.engine(r0);
        let (_, cert) = engine.log().get(BatchNum(0)).unwrap();
        assert!(cert.verify(&cluster.keys, 2).is_ok());
    }

    #[test]
    fn view_change_rotates_leader_and_recovers() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 6);
        let reps = cluster.replicas();
        let old_leader = cluster.leader();
        assert_eq!(old_leader, reps[0]);
        // Leader goes dark before proposing anything.
        cluster.down = vec![old_leader];
        cluster.timeout_all();
        cluster.run(10_000);
        // All live replicas agree on the new view with leader r1.
        for r in &reps[1..] {
            assert_eq!(cluster.engine(*r).leader(), reps[1], "at {r}");
        }
        // The new leader can commit values.
        let outputs = cluster.engine_mut(reps[1]).propose(value(3));
        cluster.enqueue_outputs(reps[1], outputs);
        cluster.run(10_000);
        let live_logs: Vec<_> = reps[1..]
            .iter()
            .map(|r| cluster.delivered[r].clone())
            .collect();
        for log in &live_logs {
            assert_eq!(log, &vec![(BatchNum(0), value(3))]);
        }
    }

    #[test]
    fn prepared_value_survives_view_change() {
        // Leader gets the value written (2f+1 writes) at some replicas
        // but accepts are lost; after view change the value must still
        // be the one decided (PBFT safety).
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 7);
        let reps = cluster.replicas();
        cluster.propose(value(8));
        // Deliver everything except Accept messages, so every replica
        // reaches "prepared" but nobody decides.
        cluster.run_with(10_000, &mut |m| match &m.msg {
            BftMsg::Accept { .. } => None,
            other => Some(other.clone()),
        });
        for r in &reps {
            assert!(cluster.delivered[r].is_empty());
        }
        // Old leader crashes; view change must re-propose value(8).
        cluster.down = vec![reps[0]];
        cluster.timeout_all();
        cluster.run(20_000);
        for r in &reps[1..] {
            assert_eq!(
                cluster.delivered[r],
                vec![(BatchNum(0), value(8))],
                "replica {r} must decide the prepared value"
            );
        }
    }

    #[test]
    fn lagging_replica_catches_up_via_state_transfer() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 8);
        let reps = cluster.replicas();
        let lagger = reps[3];
        // Cut lagger off for two slots.
        for i in 0..2 {
            cluster.propose(value(i));
            cluster.run_with(10_000, &mut |m| {
                (m.to != lagger && m.from != lagger).then(|| m.msg.clone())
            });
        }
        assert!(cluster.delivered[&lagger].is_empty());
        // Reconnect: next slot's propose triggers a state request.
        cluster.propose(value(2));
        cluster.run(20_000);
        let log = cluster.assert_agreement();
        assert_eq!(log.len(), 3);
    }
}
