//! # transedge-consensus
//!
//! Intra-cluster Byzantine fault-tolerant state machine replication —
//! the substrate the paper obtains from BFT-SMaRt (ref. \[13\]) and that every
//! TransEdge batch commit runs through (§3.1–3.2).
//!
//! The protocol is the classic leader-driven three-phase pattern
//! (PBFT's pre-prepare/prepare/commit; BFT-SMaRt calls the phases
//! PROPOSE/WRITE/ACCEPT, and so do we):
//!
//! 1. the current leader **proposes** a value (a TransEdge batch) for
//!    the next slot of the log;
//! 2. replicas validate it (signature, leader identity, and an
//!    application callback that re-runs TransEdge's conflict checks —
//!    this is how "a malicious leader cannot commit transactions that
//!    are inconsistent with the state of the SMR log", §3.2) and
//!    broadcast signed **WRITE**s;
//! 3. on a `2f+1` write quorum, replicas broadcast signed **ACCEPT**s;
//!    `2f+1` accepts decide the slot.
//!
//! Accept signatures double as the **certificate**: any `f+1` of them
//! prove to a third party (a TransEdge client) that the batch was
//! decided — "at the end of the consensus f+1 signatures are collected
//! from the replicas and are added to the batch" (§3.2).
//!
//! A view-change sub-protocol (leader timeout or detected equivocation
//! → `2f+1` VIEW-CHANGE messages → NEW-VIEW from the next leader,
//! re-proposing any write-certified value) provides liveness under a
//! faulty leader; [`byzantine`] packages standard adversaries used by
//! the test-suite.
//!
//! The engine ([`engine::BftEngine`]) is a *pure state machine*:
//! messages in, [`engine::Output`]s out. It performs real Ed25519
//! signing/verification via `transedge-crypto`, but does no I/O and
//! keeps no clock — hosts own timers (see `transedge-core::node`).

pub mod byzantine;
pub mod engine;
pub mod harness;
pub mod messages;

pub use engine::{BftConfig, BftEngine, Output};
pub use messages::{BftMsg, BftValue, Certificate};
