//! The BFT consensus engine: a pure message-in / outputs-out state
//! machine. See the crate docs for the protocol outline.

use std::collections::HashMap;

use transedge_common::{BatchNum, ClusterId, NodeId, ReplicaId, ViewNum};
use transedge_crypto::{Digest, KeyStore, Keypair, Signature};
use transedge_storage::BatchArchive;

use crate::messages::{
    accept_statement, propose_statement, view_change_statement, write_statement, BftMsg, BftValue,
    Certificate, ViewChangeVote,
};

/// Static configuration of one engine instance.
#[derive(Clone, Debug)]
pub struct BftConfig {
    pub cluster: ClusterId,
    pub me: ReplicaId,
    /// Byzantine failures tolerated; the cluster has `3f+1` replicas.
    pub f: usize,
}

impl BftConfig {
    pub fn n(&self) -> usize {
        3 * self.f + 1
    }
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }
    pub fn cert_quorum(&self) -> usize {
        self.f + 1
    }
    /// All replica ids of this cluster.
    pub fn peers(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        let c = self.cluster;
        (0..self.n() as u16).map(move |i| ReplicaId::new(c, i))
    }
}

/// Effects produced by the engine for the host to act on.
#[derive(Debug)]
pub enum Output<V> {
    /// Send to one cluster peer.
    Send(ReplicaId, BftMsg<V>),
    /// Send to every *other* replica of the cluster.
    Broadcast(BftMsg<V>),
    /// A slot was decided and is next in log order: deliver to the
    /// application together with its `f+1` certificate.
    Decided {
        slot: BatchNum,
        value: V,
        cert: Certificate,
    },
    /// The engine moved to a new view. The host should reset its
    /// leader-progress timer (and, if it is the application driver,
    /// re-issue any pending proposal on `EnteredView` where
    /// `is_leader`).
    EnteredView { view: ViewNum, leader: ReplicaId },
}

/// Per-slot voting state.
struct SlotState<V> {
    /// Proposal accepted in the current view: (view, value, digest).
    proposal: Option<(ViewNum, V, Digest)>,
    /// Propose received while this replica lagged; replayed once the
    /// slot becomes current.
    pending_propose: Option<(ReplicaId, BftMsg<V>)>,
    /// WRITE votes: replica → (view, digest, sig).
    writes: HashMap<ReplicaId, (ViewNum, Digest, Signature)>,
    /// ACCEPT votes: replica → (digest, sig).
    accepts: HashMap<ReplicaId, (Digest, Signature)>,
    wrote: bool,
    accepted: bool,
    decided: Option<V>,
}

impl<V> Default for SlotState<V> {
    fn default() -> Self {
        SlotState {
            proposal: None,
            pending_propose: None,
            writes: HashMap::new(),
            accepts: HashMap::new(),
            wrote: false,
            accepted: false,
            decided: None,
        }
    }
}

/// The consensus engine. One per replica.
pub struct BftEngine<V: BftValue> {
    config: BftConfig,
    keypair: Keypair,
    keys: KeyStore,
    view: ViewNum,
    /// In-flight slot states, keyed by slot number.
    slots: HashMap<u64, SlotState<V>>,
    /// Delivered prefix of the log (value + certificate per slot).
    log: BatchArchive<(V, Certificate)>,
    /// View-change votes collected per target view.
    vc_votes: HashMap<ViewNum, HashMap<ReplicaId, (ViewChangeVote, Option<V>)>>,
    /// Our current view-change target, if we are voting for one.
    vc_target: Option<ViewNum>,
    /// Reproposal obligation installed by the current view's NewView:
    /// Propose for this slot must carry this digest.
    reproposal_obligation: Option<(BatchNum, Digest)>,
}

impl<V: BftValue> BftEngine<V> {
    pub fn new(config: BftConfig, keypair: Keypair, keys: KeyStore) -> Self {
        BftEngine {
            config,
            keypair,
            keys,
            view: ViewNum(0),
            slots: HashMap::new(),
            log: BatchArchive::new(),
            vc_votes: HashMap::new(),
            vc_target: None,
            reproposal_obligation: None,
        }
    }

    // ---- accessors -------------------------------------------------

    pub fn view(&self) -> ViewNum {
        self.view
    }

    pub fn leader(&self) -> ReplicaId {
        ReplicaId::new(self.config.cluster, self.view.leader_index(self.config.n()))
    }

    pub fn is_leader(&self) -> bool {
        self.leader() == self.config.me
    }

    /// Number of delivered (in-order decided) slots.
    pub fn delivered_count(&self) -> u64 {
        self.log.len() as u64
    }

    /// The slot the leader would propose next.
    pub fn next_slot(&self) -> BatchNum {
        self.log.next_num()
    }

    /// Is a proposal currently possible (we lead and nothing is in
    /// flight for the next slot)?
    pub fn can_propose(&self) -> bool {
        self.is_leader()
            && self
                .slots
                .get(&self.next_slot().0)
                .is_none_or(|s| s.proposal.is_none() && s.decided.is_none())
            && self.vc_target.is_none()
    }

    /// Delivered log access (host convenience).
    pub fn log(&self) -> &BatchArchive<(V, Certificate)> {
        &self.log
    }

    /// Is there a proposal in flight that has not decided yet? Hosts
    /// use this to drive leader-progress timeouts.
    pub fn has_undecided_inflight(&self) -> bool {
        self.vc_target.is_some()
            || self
                .slots
                .values()
                .any(|s| s.decided.is_none() && (s.proposal.is_some() || !s.writes.is_empty()))
    }

    pub fn config(&self) -> &BftConfig {
        &self.config
    }

    /// Install a pre-agreed genesis value at slot 0 (deployment
    /// bootstrap: every replica is constructed with the same value and
    /// an externally assembled certificate, so no consensus round is
    /// needed for the initial data load).
    pub fn install_genesis(&mut self, value: V, cert: Certificate) {
        assert!(self.log.is_empty(), "genesis must precede all slots");
        assert_eq!(cert.slot, BatchNum(0));
        assert_eq!(cert.digest, value.digest());
        self.log.append(BatchNum(0), (value, cert));
    }

    // ---- proposing ---------------------------------------------------

    /// Leader entry point: propose `value` for the next slot.
    /// Returns the outgoing messages (and possibly an immediate
    /// decision, with `f = 0`-style tiny clusters in tests).
    pub fn propose(&mut self, value: V) -> Vec<Output<V>> {
        let mut out = Vec::new();
        if !self.can_propose() {
            return out;
        }
        let slot = self.next_slot();
        let digest = value.digest();
        if let Some((ob_slot, ob_digest)) = self.reproposal_obligation {
            if ob_slot == slot && ob_digest != digest {
                // We are obliged to re-propose the prepared value, not a
                // fresh one. Hosts should not hit this; refuse.
                return out;
            }
        }
        let stmt = propose_statement(self.config.cluster, self.view, slot, &digest);
        let sig = self.keypair.sign(&stmt);
        out.push(Output::Broadcast(BftMsg::Propose {
            view: self.view,
            slot,
            value: value.clone(),
            sig,
        }));
        self.install_proposal(slot, value, digest, &mut out);
        out
    }

    /// Record the proposal locally and emit our WRITE.
    fn install_proposal(
        &mut self,
        slot: BatchNum,
        value: V,
        digest: Digest,
        out: &mut Vec<Output<V>>,
    ) {
        let view = self.view;
        let slot_state = self.slots.entry(slot.0).or_default();
        slot_state.proposal = Some((view, value, digest));
        slot_state.wrote = true;
        let wstmt = write_statement(self.config.cluster, view, slot, &digest);
        let wsig = self.keypair.sign(&wstmt);
        slot_state
            .writes
            .insert(self.config.me, (view, digest, wsig));
        out.push(Output::Broadcast(BftMsg::Write {
            view,
            slot,
            digest,
            sig: wsig,
        }));
        self.check_write_quorum(slot, out);
        self.check_accept_quorum(slot, out);
    }

    // ---- message handling -------------------------------------------

    /// Feed one message from `from` into the engine. `validate` is the
    /// application's proposal check (TransEdge re-runs its conflict
    /// rules here); it is only invoked for proposals that are otherwise
    /// authentic and current.
    pub fn handle(
        &mut self,
        from: ReplicaId,
        msg: BftMsg<V>,
        validate: &mut dyn FnMut(BatchNum, &V) -> bool,
    ) -> Vec<Output<V>> {
        let mut out = Vec::new();
        if from.cluster != self.config.cluster || from.index as usize >= self.config.n() {
            return out; // not a member of this cluster
        }
        match msg {
            BftMsg::Propose {
                view,
                slot,
                value,
                sig,
            } => self.on_propose(from, view, slot, value, sig, validate, &mut out),
            BftMsg::Write {
                view,
                slot,
                digest,
                sig,
            } => self.on_write(from, view, slot, digest, sig, &mut out),
            BftMsg::Accept { slot, digest, sig } => {
                self.on_accept(from, slot, digest, sig, &mut out)
            }
            BftMsg::ViewChange {
                vote,
                prepared_value,
            } => self.on_view_change(from, vote, prepared_value, &mut out),
            BftMsg::NewView {
                view,
                votes,
                reproposal,
            } => self.on_new_view(from, view, votes, reproposal, &mut out),
            BftMsg::StateRequest { from: from_slot } => {
                self.on_state_request(from, from_slot, &mut out)
            }
            BftMsg::StateResponse { batches } => self.on_state_response(batches, &mut out),
        }
        out
    }

    /// Host API: feed a view-change that carries a prepared value.
    /// (`BftMsg::ViewChange` is value-less on the wire only when no
    /// value was prepared; hosts route both through `handle` — this
    /// variant exists for harnesses that split them.)
    pub fn handle_view_change_with_value(
        &mut self,
        from: ReplicaId,
        vote: ViewChangeVote,
        value: Option<V>,
    ) -> Vec<Output<V>> {
        let mut out = Vec::new();
        self.on_view_change(from, vote, value, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn on_propose(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        slot: BatchNum,
        value: V,
        sig: Signature,
        validate: &mut dyn FnMut(BatchNum, &V) -> bool,
        out: &mut Vec<Output<V>>,
    ) {
        // Stale or foreign-view proposals are ignored (view changes and
        // state transfer recover liveness).
        if view != self.view || slot < self.next_slot() {
            return;
        }
        // Only the leader of this view may propose.
        if from != self.leader() {
            return;
        }
        let digest = value.digest();
        let stmt = propose_statement(self.config.cluster, view, slot, &digest);
        if self
            .keys
            .verify(NodeId::Replica(from), &stmt, &sig)
            .is_err()
        {
            return;
        }
        // Proposals beyond the next slot are buffered until we catch up
        // (the application can only validate against applied state).
        if slot > self.next_slot() {
            let entry = self.slots.entry(slot.0).or_default();
            entry.pending_propose = Some((
                from,
                BftMsg::Propose {
                    view,
                    slot,
                    value,
                    sig,
                },
            ));
            // We are behind: ask the leader for the decided prefix.
            out.push(Output::Send(
                from,
                BftMsg::StateRequest {
                    from: self.next_slot(),
                },
            ));
            return;
        }
        // Equivocation check: a different digest for the same
        // (view, slot) already accepted from this leader.
        if let Some(state) = self.slots.get(&slot.0) {
            if let Some((pview, _, pdigest)) = &state.proposal {
                if *pview == view && *pdigest != digest {
                    // Leader equivocated — vote the leader out.
                    let vc = self.start_view_change(self.view.next());
                    out.extend(vc);
                    return;
                }
                if *pview == view {
                    return; // duplicate of the accepted proposal
                }
            }
        }
        // Reproposal obligation from the NewView of this view.
        if let Some((ob_slot, ob_digest)) = self.reproposal_obligation {
            if ob_slot == slot && ob_digest != digest {
                let vc = self.start_view_change(self.view.next());
                out.extend(vc);
                return;
            }
        }
        // Application-level validation (byzantine leaders can produce
        // authentic but semantically invalid batches).
        if !validate(slot, &value) {
            let vc = self.start_view_change(self.view.next());
            out.extend(vc);
            return;
        }
        self.install_proposal(slot, value, digest, out);
    }

    fn on_write(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        slot: BatchNum,
        digest: Digest,
        sig: Signature,
        out: &mut Vec<Output<V>>,
    ) {
        if slot < self.next_slot() || view != self.view {
            return;
        }
        let stmt = write_statement(self.config.cluster, view, slot, &digest);
        if self
            .keys
            .verify(NodeId::Replica(from), &stmt, &sig)
            .is_err()
        {
            return;
        }
        let state = self.slots.entry(slot.0).or_default();
        // First write per replica per view wins (byzantine replicas
        // cannot double-vote).
        state.writes.entry(from).or_insert((view, digest, sig));
        self.check_write_quorum(slot, out);
    }

    fn on_accept(
        &mut self,
        from: ReplicaId,
        slot: BatchNum,
        digest: Digest,
        sig: Signature,
        out: &mut Vec<Output<V>>,
    ) {
        if slot < self.next_slot() {
            return;
        }
        let stmt = accept_statement(self.config.cluster, slot, &digest);
        if self
            .keys
            .verify(NodeId::Replica(from), &stmt, &sig)
            .is_err()
        {
            return;
        }
        let state = self.slots.entry(slot.0).or_default();
        state.accepts.entry(from).or_insert((digest, sig));
        self.check_accept_quorum(slot, out);
    }

    fn check_write_quorum(&mut self, slot: BatchNum, out: &mut Vec<Output<V>>) {
        let view = self.view;
        let quorum = self.config.quorum();
        let Some(state) = self.slots.get_mut(&slot.0) else {
            return;
        };
        if state.accepted || state.decided.is_some() {
            return;
        }
        let Some((pview, _, pdigest)) = &state.proposal else {
            return;
        };
        if *pview != view {
            return;
        }
        let digest = *pdigest;
        let count = state
            .writes
            .values()
            .filter(|(v, d, _)| *v == view && *d == digest)
            .count();
        if count < quorum {
            return;
        }
        state.accepted = true;
        let stmt = accept_statement(self.config.cluster, slot, &digest);
        let sig = self.keypair.sign(&stmt);
        state.accepts.insert(self.config.me, (digest, sig));
        out.push(Output::Broadcast(BftMsg::Accept { slot, digest, sig }));
        self.check_accept_quorum(slot, out);
    }

    fn check_accept_quorum(&mut self, slot: BatchNum, out: &mut Vec<Output<V>>) {
        let quorum = self.config.quorum();
        let cert_quorum = self.config.cert_quorum();
        let cluster = self.config.cluster;
        let Some(state) = self.slots.get_mut(&slot.0) else {
            return;
        };
        if state.decided.is_some() {
            return;
        }
        let Some((_, value, pdigest)) = &state.proposal else {
            // 2f+1 accepts without a proposal means we missed the value;
            // ask a correct accepter for state.
            if state.accepts.len() >= quorum && state.pending_propose.is_none() {
                // Majority digest's first signer gets the request.
                if let Some((peer, _)) = state.accepts.iter().next() {
                    let from_slot = self.log.next_num();
                    let peer = *peer;
                    out.push(Output::Send(peer, BftMsg::StateRequest { from: from_slot }));
                }
            }
            return;
        };
        let digest = *pdigest;
        let matching: Vec<(NodeId, Signature)> = state
            .accepts
            .iter()
            .filter(|(_, (d, _))| *d == digest)
            .map(|(r, (_, s))| (NodeId::Replica(*r), *s))
            .collect();
        if matching.len() < quorum {
            return;
        }
        let mut sigs = matching;
        sigs.sort_by_key(|(n, _)| *n);
        sigs.truncate(cert_quorum);
        let cert = Certificate {
            cluster,
            slot,
            digest,
            sigs,
        };
        state.decided = Some(value.clone());
        self.deliver_ready(slot, cert, out);
    }

    /// Deliver decided slots in log order starting from `slot` if it is
    /// next; subsequent already-decided slots flush too.
    fn deliver_ready(
        &mut self,
        decided_slot: BatchNum,
        cert: Certificate,
        out: &mut Vec<Output<V>>,
    ) {
        // Stash the certificate with the slot so the flush below can use it.
        // (Only the just-decided slot carries a fresh cert; slots decided
        // earlier already hold theirs in `pending_certs` via recursion.)
        let mut certs: HashMap<u64, Certificate> = HashMap::new();
        certs.insert(decided_slot.0, cert);
        loop {
            let next = self.log.next_num();
            let Some(state) = self.slots.get(&next.0) else {
                break;
            };
            if state.decided.is_none() {
                break;
            }
            let state = self.slots.remove(&next.0).unwrap();
            let value = state.decided.unwrap();
            let cert = match certs.remove(&next.0) {
                Some(c) => c,
                None => {
                    // Rebuild from stored accepts (slot decided earlier,
                    // out of order).
                    let digest = value.digest();
                    let mut sigs: Vec<(NodeId, Signature)> = state
                        .accepts
                        .iter()
                        .filter(|(_, (d, _))| *d == digest)
                        .map(|(r, (_, s))| (NodeId::Replica(*r), *s))
                        .collect();
                    sigs.sort_by_key(|(n, _)| *n);
                    sigs.truncate(self.config.cert_quorum());
                    Certificate {
                        cluster: self.config.cluster,
                        slot: next,
                        digest,
                        sigs,
                    }
                }
            };
            self.log.append(next, (value.clone(), cert.clone()));
            out.push(Output::Decided {
                slot: next,
                value,
                cert,
            });
            // A buffered proposal for the new next slot can now be
            // replayed by the host; surface it via re-handling.
            let new_next = self.log.next_num();
            if let Some(st) = self.slots.get_mut(&new_next.0) {
                if let Some((from, msg)) = st.pending_propose.take() {
                    // Replay with a permissive validator: the host's
                    // validator is not available here, so mark it
                    // pending again through a self-send. Hosts replay
                    // via `take_pending_propose`.
                    st.pending_propose = Some((from, msg));
                }
            }
            // After delivering, the view's reproposal obligation for
            // this slot is discharged.
            if let Some((ob_slot, _)) = self.reproposal_obligation {
                if ob_slot == next {
                    self.reproposal_obligation = None;
                }
            }
        }
    }

    /// If a proposal was buffered for the current next slot while this
    /// replica lagged, take it for replay through [`BftEngine::handle`].
    pub fn take_pending_propose(&mut self) -> Option<(ReplicaId, BftMsg<V>)> {
        let next = self.next_slot();
        self.slots
            .get_mut(&next.0)
            .and_then(|s| s.pending_propose.take())
    }

    // ---- view change -------------------------------------------------

    /// Host-driven: the leader-progress timer fired.
    pub fn on_timeout(&mut self) -> Vec<Output<V>> {
        let target = match self.vc_target {
            // Escalate if we were already trying to change views.
            Some(t) => t.next(),
            None => self.view.next(),
        };
        self.start_view_change(target)
    }

    fn start_view_change(&mut self, target: ViewNum) -> Vec<Output<V>> {
        let mut out = Vec::new();
        if self.vc_target == Some(target) {
            return out;
        }
        self.vc_target = Some(target);
        let delivered = self.log.next_num();
        // Report a prepared (write-quorum) value for the next slot, if
        // we hold one.
        let prepared_info = self.slots.get(&delivered.0).and_then(|s| {
            let (pview, value, pdigest) = s.proposal.as_ref()?;
            let count = s
                .writes
                .values()
                .filter(|(v, d, _)| v == pview && d == pdigest)
                .count();
            (count >= self.config.quorum()).then(|| ((*pview, delivered, *pdigest), value.clone()))
        });
        let (prepared, prepared_value) = match prepared_info {
            Some((triple, value)) => (Some(triple), Some(value)),
            None => (None, None),
        };
        let stmt = view_change_statement(self.config.cluster, target, delivered, &prepared);
        let vote = ViewChangeVote {
            new_view: target,
            delivered,
            prepared,
            sig: self.keypair.sign(&stmt),
        };
        // Record own vote.
        self.record_vc_vote(self.config.me, vote.clone(), prepared_value.clone());
        out.push(Output::Broadcast(BftMsg::ViewChange {
            vote,
            prepared_value,
        }));
        // Own vote might complete a quorum (tiny clusters in tests).
        self.try_install_view(target, &mut out);
        out
    }

    fn record_vc_vote(&mut self, from: ReplicaId, vote: ViewChangeVote, value: Option<V>) {
        self.vc_votes
            .entry(vote.new_view)
            .or_default()
            .entry(from)
            .or_insert((vote, value));
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        vote: ViewChangeVote,
        value: Option<V>,
        out: &mut Vec<Output<V>>,
    ) {
        if vote.new_view <= self.view {
            return;
        }
        let stmt = view_change_statement(
            self.config.cluster,
            vote.new_view,
            vote.delivered,
            &vote.prepared,
        );
        if self
            .keys
            .verify(NodeId::Replica(from), &stmt, &vote.sig)
            .is_err()
        {
            return;
        }
        // A prepared claim must come with the matching value.
        if let Some((_, _, pdigest)) = &vote.prepared {
            match &value {
                Some(v) if v.digest() == *pdigest => {}
                // Without the value the claim is unusable for
                // re-proposal; still count the vote (the digest alone
                // constrains the new leader via other votes).
                _ => {}
            }
        }
        let target = vote.new_view;
        self.record_vc_vote(from, vote, value);
        // Join rule: f+1 votes for views above ours → join the lowest
        // such view.
        if self.vc_target.is_none_or(|t| t < target) {
            let distinct: usize = self
                .vc_votes
                .iter()
                .filter(|(v, _)| **v > self.view)
                .map(|(_, votes)| votes.len())
                .sum();
            if distinct >= self.config.cert_quorum() {
                let lowest = self
                    .vc_votes
                    .iter()
                    .filter(|(v, votes)| **v > self.view && !votes.is_empty())
                    .map(|(v, _)| *v)
                    .min()
                    .unwrap();
                let vc = self.start_view_change(lowest);
                out.extend(vc);
            }
        }
        self.try_install_view(target, out);
    }

    /// If we are the leader of `target` and hold 2f+1 votes, install the
    /// view and broadcast NEW-VIEW.
    fn try_install_view(&mut self, target: ViewNum, out: &mut Vec<Output<V>>) {
        if target <= self.view {
            return;
        }
        let leader_idx = target.leader_index(self.config.n());
        if ReplicaId::new(self.config.cluster, leader_idx) != self.config.me {
            return;
        }
        let Some(votes) = self.vc_votes.get(&target) else {
            return;
        };
        if votes.len() < self.config.quorum() {
            return;
        }
        // Determine the reproposal obligation: the prepared claim with
        // the highest view among the votes, with its value available.
        let mut best: Option<(ViewNum, BatchNum, Digest, V)> = None;
        for (vote, value) in votes.values() {
            if let (Some((pv, ps, pd)), Some(val)) = (&vote.prepared, value) {
                if val.digest() == *pd && best.as_ref().is_none_or(|(bv, ..)| pv > bv) {
                    best = Some((*pv, *ps, *pd, val.clone()));
                }
            }
        }
        let vote_list: Vec<(ReplicaId, ViewChangeVote)> =
            votes.iter().map(|(r, (v, _))| (*r, v.clone())).collect();
        let reproposal = best.as_ref().map(|(_, _, _, v)| v.clone());
        out.push(Output::Broadcast(BftMsg::NewView {
            view: target,
            votes: vote_list,
            reproposal: reproposal.clone(),
        }));
        // Install locally.
        self.enter_view(target, best.as_ref().map(|(_, s, d, _)| (*s, *d)), out);
        // Re-propose the prepared value if we owe one and it is still
        // undecided.
        if let Some((_, slot, digest, value)) = best {
            if slot >= self.next_slot() && slot == self.next_slot() {
                let stmt = propose_statement(self.config.cluster, self.view, slot, &digest);
                let sig = self.keypair.sign(&stmt);
                out.push(Output::Broadcast(BftMsg::Propose {
                    view: self.view,
                    slot,
                    value: value.clone(),
                    sig,
                }));
                self.install_proposal(slot, value, digest, out);
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        votes: Vec<(ReplicaId, ViewChangeVote)>,
        reproposal: Option<V>,
        out: &mut Vec<Output<V>>,
    ) {
        if view <= self.view {
            return;
        }
        // Only the rightful leader of `view` may install it.
        if from != ReplicaId::new(self.config.cluster, view.leader_index(self.config.n())) {
            return;
        }
        // Verify 2f+1 distinct signed votes for exactly this view.
        let mut valid = std::collections::HashSet::new();
        for (voter, vote) in &votes {
            if vote.new_view != view {
                continue;
            }
            let stmt = view_change_statement(
                self.config.cluster,
                vote.new_view,
                vote.delivered,
                &vote.prepared,
            );
            if self
                .keys
                .verify(NodeId::Replica(*voter), &stmt, &vote.sig)
                .is_ok()
            {
                valid.insert(*voter);
            }
        }
        if valid.len() < self.config.quorum() {
            return;
        }
        // Compute the obligation the new leader must honour.
        let mut obligation: Option<(ViewNum, BatchNum, Digest)> = None;
        for (_, vote) in &votes {
            if let Some((pv, ps, pd)) = &vote.prepared {
                if obligation.as_ref().is_none_or(|(bv, ..)| pv > bv) {
                    obligation = Some((*pv, *ps, *pd));
                }
            }
        }
        // If there is an obligation, the reproposal must match it.
        if let Some((_, _, od)) = &obligation {
            match &reproposal {
                Some(v) if v.digest() == *od => {}
                _ => return, // malformed NewView: refuse to enter
            }
        }
        self.enter_view(view, obligation.map(|(_, s, d)| (s, d)), out);
    }

    fn enter_view(
        &mut self,
        view: ViewNum,
        obligation: Option<(BatchNum, Digest)>,
        out: &mut Vec<Output<V>>,
    ) {
        self.view = view;
        self.vc_target = None;
        self.vc_votes.retain(|v, _| *v > view);
        self.reproposal_obligation = obligation.filter(|(s, _)| *s >= self.next_slot());
        // Undecided in-flight slots: write votes are view-scoped and now
        // stale — drop them so fresh view-`v` writes can be recorded
        // (votes are keyed per replica and first-write-wins). The
        // proposal and our wrote/accepted flags also reset so we re-vote
        // on the re-proposal; recorded accepts survive because accept
        // statements are view-independent.
        for state in self.slots.values_mut() {
            if state.decided.is_none() {
                state.proposal = None;
                state.wrote = false;
                state.accepted = false;
                state.writes.clear();
            }
        }
        out.push(Output::EnteredView {
            view,
            leader: self.leader(),
        });
    }

    // ---- state transfer ----------------------------------------------

    fn on_state_request(&mut self, from: ReplicaId, from_slot: BatchNum, out: &mut Vec<Output<V>>) {
        let batches: Vec<(BatchNum, V, Certificate)> = self
            .log
            .iter()
            .skip(from_slot.0 as usize)
            .map(|(n, (v, c))| (n, v.clone(), c.clone()))
            .collect();
        if !batches.is_empty() {
            out.push(Output::Send(from, BftMsg::StateResponse { batches }));
        }
    }

    fn on_state_response(
        &mut self,
        batches: Vec<(BatchNum, V, Certificate)>,
        out: &mut Vec<Output<V>>,
    ) {
        for (slot, value, cert) in batches {
            if slot != self.log.next_num() {
                continue; // out of order or already known
            }
            // The certificate is the trust anchor: f+1 accept
            // signatures over the digest.
            if cert.slot != slot
                || cert.cluster != self.config.cluster
                || cert.digest != value.digest()
                || cert.verify(&self.keys, self.config.cert_quorum()).is_err()
            {
                continue;
            }
            self.slots.remove(&slot.0);
            self.log.append(slot, (value.clone(), cert.clone()));
            out.push(Output::Decided { slot, value, cert });
        }
    }
}
