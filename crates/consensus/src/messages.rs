//! Consensus message types, signed statements, and certificates.

use transedge_common::{
    BatchNum, ClusterId, Decode, Encode, NodeId, ReplicaId, Result, TransEdgeError, ViewNum,
    WireReader, WireWriter,
};
use transedge_crypto::{Digest, KeyStore, Signature};

/// A value that can go through consensus: it must expose a canonical
/// digest (what WRITE/ACCEPT votes and certificates sign).
pub trait BftValue: Clone {
    fn digest(&self) -> Digest;
}

impl BftValue for Vec<u8> {
    fn digest(&self) -> Digest {
        transedge_crypto::sha256(self)
    }
}

/// The canonical byte statement a WRITE vote signs.
/// Write votes are view-scoped: a write certificate from view `v`
/// must not be confused with one from view `v+1`.
pub fn write_statement(
    cluster: ClusterId,
    view: ViewNum,
    slot: BatchNum,
    digest: &Digest,
) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(64);
    w.put_bytes(b"transedge/write");
    cluster.encode(&mut w);
    view.encode(&mut w);
    slot.encode(&mut w);
    digest.encode(&mut w);
    w.into_bytes()
}

/// The canonical byte statement an ACCEPT vote signs.
/// Accept votes are *not* view-scoped: the decided value for a slot is
/// unique across views, and clients verifying a certificate should not
/// need to know which view decided it.
pub fn accept_statement(cluster: ClusterId, slot: BatchNum, digest: &Digest) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(64);
    w.put_bytes(b"transedge/accept");
    cluster.encode(&mut w);
    slot.encode(&mut w);
    digest.encode(&mut w);
    w.into_bytes()
}

/// Statement signed by a PROPOSE.
pub fn propose_statement(
    cluster: ClusterId,
    view: ViewNum,
    slot: BatchNum,
    digest: &Digest,
) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(64);
    w.put_bytes(b"transedge/propose");
    cluster.encode(&mut w);
    view.encode(&mut w);
    slot.encode(&mut w);
    digest.encode(&mut w);
    w.into_bytes()
}

/// Statement signed by a VIEW-CHANGE vote.
pub fn view_change_statement(
    cluster: ClusterId,
    new_view: ViewNum,
    delivered: BatchNum,
    prepared: &Option<(ViewNum, BatchNum, Digest)>,
) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(96);
    w.put_bytes(b"transedge/view-change");
    cluster.encode(&mut w);
    new_view.encode(&mut w);
    delivered.encode(&mut w);
    match prepared {
        None => w.put_u8(0),
        Some((v, s, d)) => {
            w.put_u8(1);
            v.encode(&mut w);
            s.encode(&mut w);
            d.encode(&mut w);
        }
    }
    w.into_bytes()
}

/// An `f+1` signature certificate over a decided slot.
///
/// This is the object TransEdge attaches to every batch: proof for any
/// client that the batch (identified by its digest) is the decided
/// value of `slot` in this cluster's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    pub cluster: ClusterId,
    pub slot: BatchNum,
    pub digest: Digest,
    pub sigs: Vec<(NodeId, Signature)>,
}

impl Certificate {
    /// Verify against the public-key directory: at least `quorum`
    /// distinct valid signatures over the accept statement.
    pub fn verify(&self, keys: &KeyStore, quorum: usize) -> Result<()> {
        // Signers must be replicas of the right cluster.
        for (node, _) in &self.sigs {
            match node {
                NodeId::Replica(r) if r.cluster == self.cluster => {}
                other => {
                    return Err(TransEdgeError::Verification(format!(
                        "certificate signer {other} is not a replica of {}",
                        self.cluster
                    )))
                }
            }
        }
        let stmt = accept_statement(self.cluster, self.slot, &self.digest);
        keys.require_quorum(&stmt, &self.sigs, quorum)
    }
}

impl Encode for Certificate {
    fn encode(&self, w: &mut WireWriter) {
        self.cluster.encode(w);
        self.slot.encode(w);
        self.digest.encode(w);
        w.put_u32(self.sigs.len() as u32);
        for (node, sig) in &self.sigs {
            node.encode(w);
            sig.encode(w);
        }
    }
}

impl Decode for Certificate {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let cluster = ClusterId::decode(r)?;
        let slot = BatchNum::decode(r)?;
        let digest = Digest::decode(r)?;
        let n = r.get_u32()? as usize;
        let mut sigs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            sigs.push((NodeId::decode(r)?, Signature::decode(r)?));
        }
        Ok(Certificate {
            cluster,
            slot,
            digest,
            sigs,
        })
    }
}

/// A signed VIEW-CHANGE vote.
#[derive(Clone, Debug)]
pub struct ViewChangeVote {
    pub new_view: ViewNum,
    /// Highest slot this replica has delivered.
    pub delivered: BatchNum,
    /// If the replica holds a 2f+1 WRITE quorum for an undecided slot:
    /// (view it was written in, slot, digest) plus the value itself.
    pub prepared: Option<(ViewNum, BatchNum, Digest)>,
    pub sig: Signature,
}

/// Consensus protocol messages exchanged within one cluster.
#[derive(Clone, Debug)]
pub enum BftMsg<V> {
    /// Leader's proposal for `slot` in `view`.
    Propose {
        view: ViewNum,
        slot: BatchNum,
        value: V,
        sig: Signature,
    },
    /// WRITE vote (phase 2).
    Write {
        view: ViewNum,
        slot: BatchNum,
        digest: Digest,
        sig: Signature,
    },
    /// ACCEPT vote (phase 3). Its signature doubles as a certificate
    /// share.
    Accept {
        slot: BatchNum,
        digest: Digest,
        sig: Signature,
    },
    /// Vote to move to `new_view`. If the voter holds a write-quorum
    /// ("prepared") value for the undecided slot, it ships the value so
    /// the new leader can re-propose it; the vote's signed digest binds
    /// it.
    ViewChange {
        vote: ViewChangeVote,
        prepared_value: Option<V>,
    },
    /// New leader's installation message: the 2f+1 view-change votes
    /// justifying the view, and the value it must re-propose (if any).
    NewView {
        view: ViewNum,
        votes: Vec<(ReplicaId, ViewChangeVote)>,
        /// Re-proposed prepared value, if some vote carried one.
        reproposal: Option<V>,
    },
    /// Catch-up: ask for decided slots starting at `from`.
    StateRequest { from: BatchNum },
    /// Catch-up response: decided values with their certificates.
    StateResponse {
        batches: Vec<(BatchNum, V, Certificate)>,
    },
}

impl<V> BftMsg<V> {
    /// Short tag for logging/metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            BftMsg::Propose { .. } => "propose",
            BftMsg::Write { .. } => "write",
            BftMsg::Accept { .. } => "accept",
            BftMsg::ViewChange { .. } => "view-change",
            BftMsg::NewView { .. } => "new-view",
            BftMsg::StateRequest { .. } => "state-request",
            BftMsg::StateResponse { .. } => "state-response",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transedge_common::ClusterTopology;
    use transedge_crypto::KeyStore;

    #[test]
    fn statements_are_domain_separated() {
        let d = Digest([1; 32]);
        let w = write_statement(ClusterId(0), ViewNum(0), BatchNum(0), &d);
        let a = accept_statement(ClusterId(0), BatchNum(0), &d);
        let p = propose_statement(ClusterId(0), ViewNum(0), BatchNum(0), &d);
        assert_ne!(w, a);
        assert_ne!(w, p);
        assert_ne!(a, p);
    }

    #[test]
    fn write_statement_is_view_scoped_accept_is_not() {
        let d = Digest([2; 32]);
        assert_ne!(
            write_statement(ClusterId(0), ViewNum(0), BatchNum(1), &d),
            write_statement(ClusterId(0), ViewNum(1), BatchNum(1), &d)
        );
        // accept has no view in it at all — same statement regardless.
        assert_eq!(
            accept_statement(ClusterId(0), BatchNum(1), &d),
            accept_statement(ClusterId(0), BatchNum(1), &d)
        );
    }

    #[test]
    fn certificate_verification() {
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[1u8; 32]);
        let digest = Digest([7; 32]);
        let stmt = accept_statement(ClusterId(0), BatchNum(3), &digest);
        let sigs: Vec<_> = topo
            .replicas_of(ClusterId(0))
            .take(2)
            .map(|r| (NodeId::Replica(r), secrets[&r].sign(&stmt)))
            .collect();
        let cert = Certificate {
            cluster: ClusterId(0),
            slot: BatchNum(3),
            digest,
            sigs,
        };
        assert!(cert.verify(&keys, 2).is_ok());
        assert!(cert.verify(&keys, 3).is_err());
        // Tampered digest invalidates.
        let mut bad = cert.clone();
        bad.digest = Digest([8; 32]);
        assert!(bad.verify(&keys, 2).is_err());
    }

    #[test]
    fn certificate_rejects_foreign_signers() {
        let topo = ClusterTopology::new(2, 1).unwrap();
        let (keys, secrets) = KeyStore::for_topology(&topo, &[1u8; 32]);
        let digest = Digest([7; 32]);
        let stmt = accept_statement(ClusterId(0), BatchNum(0), &digest);
        // Signature from a replica of cluster 1 on a cluster-0 cert.
        let foreign = transedge_common::ReplicaId::new(ClusterId(1), 0);
        let cert = Certificate {
            cluster: ClusterId(0),
            slot: BatchNum(0),
            digest,
            sigs: vec![(NodeId::Replica(foreign), secrets[&foreign].sign(&stmt))],
        };
        assert!(cert.verify(&keys, 1).is_err());
    }

    #[test]
    fn certificate_wire_roundtrip() {
        use transedge_common::wire::roundtrip;
        let topo = ClusterTopology::new(1, 1).unwrap();
        let (_, secrets) = KeyStore::for_topology(&topo, &[1u8; 32]);
        let r = transedge_common::ReplicaId::new(ClusterId(0), 0);
        let cert = Certificate {
            cluster: ClusterId(0),
            slot: BatchNum(1),
            digest: Digest([3; 32]),
            sigs: vec![(NodeId::Replica(r), secrets[&r].sign(b"x"))],
        };
        roundtrip(&cert);
    }
}
