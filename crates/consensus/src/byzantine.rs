//! Standard byzantine adversaries for testing the consensus layer.
//!
//! A byzantine node in this codebase is not a special simulator mode —
//! it is just a participant that emits different (validly signed, since
//! it owns its key) messages. The helpers here craft such messages with
//! a compromised keypair; the tests drive them through
//! [`crate::harness::Cluster`]'s message filter.

use transedge_common::{BatchNum, ClusterId, ViewNum};
use transedge_crypto::Keypair;

use crate::messages::{propose_statement, write_statement, BftMsg, BftValue};

/// Craft a validly-signed PROPOSE from a (compromised) leader keypair.
/// Used to simulate equivocation: send different values to different
/// replicas.
pub fn craft_propose<V: BftValue>(
    keypair: &Keypair,
    cluster: ClusterId,
    view: ViewNum,
    slot: BatchNum,
    value: V,
) -> BftMsg<V> {
    let digest = value.digest();
    let stmt = propose_statement(cluster, view, slot, &digest);
    BftMsg::Propose {
        view,
        slot,
        value,
        sig: keypair.sign(&stmt),
    }
}

/// Craft a validly-signed WRITE vote for an arbitrary digest (double
/// voting / vote stuffing).
pub fn craft_write<V: BftValue>(
    keypair: &Keypair,
    cluster: ClusterId,
    view: ViewNum,
    slot: BatchNum,
    digest: transedge_crypto::Digest,
) -> BftMsg<V> {
    let stmt = write_statement(cluster, view, slot, &digest);
    BftMsg::Write {
        view,
        slot,
        digest,
        sig: keypair.sign(&stmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cluster;
    use crate::messages::BftMsg;

    fn value(tag: u8) -> Vec<u8> {
        vec![tag; 8]
    }

    /// An equivocating leader sends value A to half the cluster and
    /// value B to the other half. Safety: no two correct replicas may
    /// deliver different values for the same slot.
    #[test]
    fn equivocating_leader_cannot_split_decisions() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 11);
        let reps = cluster.replicas();
        let leader = cluster.leader();
        let leader_kp = cluster.keypairs[&leader].clone();
        let cid = cluster.cluster_id;

        // The byzantine leader "proposes" by injecting equivocating
        // messages directly into the network.
        for (i, r) in reps.iter().enumerate() {
            if *r == leader {
                continue;
            }
            let v = if i % 2 == 0 { value(1) } else { value(2) };
            let msg = craft_propose(&leader_kp, cid, ViewNum(0), BatchNum(0), v);
            cluster.network.push_back(crate::harness::InFlight {
                from: leader,
                to: *r,
                msg,
            });
        }
        cluster.run(50_000);
        // No split brain: at most one distinct value across delivered
        // logs of correct replicas.
        let mut decided_values: Vec<Vec<u8>> = vec![];
        for r in &reps {
            if *r == leader {
                continue;
            }
            for (_, v) in &cluster.delivered[r] {
                if !decided_values.contains(v) {
                    decided_values.push(v.clone());
                }
            }
        }
        assert!(
            decided_values.len() <= 1,
            "equivocation split the cluster: {decided_values:?}"
        );
    }

    /// Equivocation is *detected*: some replica votes for a view change
    /// after seeing two conflicting proposals.
    #[test]
    fn equivocation_triggers_view_change_votes() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 12);
        let reps = cluster.replicas();
        let leader = cluster.leader();
        let leader_kp = cluster.keypairs[&leader].clone();
        let cid = cluster.cluster_id;
        let target = reps[1];
        // Send the same replica two conflicting proposals.
        for v in [value(1), value(2)] {
            cluster.network.push_back(crate::harness::InFlight {
                from: leader,
                to: target,
                msg: craft_propose(&leader_kp, cid, ViewNum(0), BatchNum(0), v),
            });
        }
        // Watch for a ViewChange from the target.
        let mut saw_view_change = false;
        cluster.run_with(50_000, &mut |m| {
            if m.from == target {
                if let BftMsg::ViewChange { .. } = &m.msg {
                    saw_view_change = true;
                }
            }
            Some(m.msg.clone())
        });
        assert!(
            saw_view_change,
            "conflicting proposals must trigger a view-change vote"
        );
    }

    /// A replica that forges WRITE votes for a value nobody proposed
    /// cannot make anyone accept it.
    #[test]
    fn forged_write_votes_do_not_decide() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 13);
        let reps = cluster.replicas();
        let bad = reps[3];
        let bad_kp = cluster.keypairs[&bad].clone();
        let cid = cluster.cluster_id;
        let phantom = value(99);
        let digest = phantom.digest();
        // Stuff forged writes to everyone.
        for r in &reps {
            if *r == bad {
                continue;
            }
            cluster.network.push_back(crate::harness::InFlight {
                from: bad,
                to: *r,
                msg: craft_write::<Vec<u8>>(&bad_kp, cid, ViewNum(0), BatchNum(0), digest),
            });
        }
        cluster.run(50_000);
        for r in &reps {
            assert!(cluster.delivered[r].is_empty());
        }
    }

    /// Signature checks: a message claiming to come from replica A but
    /// signed by replica B is ignored.
    #[test]
    fn spoofed_sender_is_rejected() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 14);
        let reps = cluster.replicas();
        let leader = cluster.leader();
        // Replica 3 crafts a proposal with its own key but claims the
        // leader sent it.
        let impostor_kp = cluster.keypairs[&reps[3]].clone();
        let cid = cluster.cluster_id;
        let msg = craft_propose(&impostor_kp, cid, ViewNum(0), BatchNum(0), value(66));
        cluster.network.push_back(crate::harness::InFlight {
            from: leader, // spoofed provenance
            to: reps[1],
            msg,
        });
        cluster.run(50_000);
        assert!(cluster.delivered[&reps[1]].is_empty());
    }

    /// A byzantine replica sending garbage StateResponses cannot poison
    /// a lagging replica: certificates gate acceptance.
    #[test]
    fn fake_state_response_is_rejected() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 15);
        let reps = cluster.replicas();
        let bad = reps[3];
        let victim = reps[2];
        // Build a fake certificate signed only by the byzantine node.
        let phantom = value(42);
        let digest = phantom.digest();
        let stmt = crate::messages::accept_statement(cluster.cluster_id, BatchNum(0), &digest);
        let sig = cluster.keypairs[&bad].sign(&stmt);
        let cert = crate::messages::Certificate {
            cluster: cluster.cluster_id,
            slot: BatchNum(0),
            digest,
            sigs: vec![(transedge_common::NodeId::Replica(bad), sig)],
        };
        cluster.network.push_back(crate::harness::InFlight {
            from: bad,
            to: victim,
            msg: BftMsg::StateResponse {
                batches: vec![(BatchNum(0), phantom, cert)],
            },
        });
        cluster.run(50_000);
        assert!(
            cluster.delivered[&victim].is_empty(),
            "one forged signature must not fast-forward a replica"
        );
    }

    /// The leader proposing a value the application rejects gets voted
    /// out (validate returns false → view-change vote).
    #[test]
    fn app_invalid_proposal_triggers_view_change() {
        let mut cluster: Cluster<Vec<u8>> = Cluster::new(1, 16);
        let reps = cluster.replicas();
        let leader = cluster.leader();
        cluster.propose(value(1));
        // Deliver with a validator that rejects everything at reps[1].
        // We simulate by intercepting: when the Propose reaches reps[1],
        // feed it through the engine with a rejecting validator.
        let mut saw_vc = false;
        while let Some(inflight) = cluster.network.pop_front() {
            let to = inflight.to;
            let from = inflight.from;
            let msg = inflight.msg;
            let reject = to == reps[1] && matches!(msg, BftMsg::Propose { .. });
            let outputs = cluster
                .engine_mut(to)
                .handle(from, msg, &mut |_, _| !reject);
            for o in &outputs {
                if let crate::engine::Output::Broadcast(BftMsg::ViewChange { .. }) = o {
                    if to == reps[1] {
                        saw_vc = true;
                    }
                }
            }
            // Drop further routing; we only care about the immediate vote.
            let _ = leader;
            if saw_vc {
                break;
            }
        }
        assert!(saw_vc, "invalid proposal must trigger a view-change vote");
    }
}
