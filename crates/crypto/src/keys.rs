//! Key material registry for a deployment.
//!
//! The paper assumes "each edge node has a unique public/private key
//! that it uses in all communications" (§2, Interface) and that the
//! membership of each cluster is known (permissioned setting, §6.1).
//! [`KeyStore`] is that public-key directory: every node can look up
//! every other node's verification key. Secret keys live only inside
//! the owning node's actor.

use std::collections::HashMap;

use transedge_common::{ClusterTopology, NodeId, ReplicaId, Result, TransEdgeError};

use crate::ed25519::{Keypair, PublicKey, Signature};
use crate::hmac::derive_seed;

/// Public-key directory for a whole deployment, plus deterministic
/// keypair derivation for the simulator.
#[derive(Clone, Default)]
pub struct KeyStore {
    keys: HashMap<NodeId, PublicKey>,
}

impl KeyStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Derive keypairs for every replica of a topology from one master
    /// seed. Deterministic: the same seed yields the same deployment.
    /// Returns the public directory and the per-replica keypairs (to be
    /// handed to each simulated node).
    pub fn for_topology(
        topology: &ClusterTopology,
        master_seed: &[u8; 32],
    ) -> (KeyStore, HashMap<ReplicaId, Keypair>) {
        let mut store = KeyStore::new();
        let mut secrets = HashMap::new();
        for replica in topology.all_replicas() {
            let label = format!("replica/{}/{}", replica.cluster.0, replica.index);
            let kp = Keypair::from_seed(derive_seed(master_seed, &label));
            store.register(NodeId::Replica(replica), kp.public());
            secrets.insert(replica, kp);
        }
        (store, secrets)
    }

    /// Register a node's public key (setup time only — the permissioned
    /// membership is fixed before the system starts).
    pub fn register(&mut self, node: NodeId, key: PublicKey) {
        self.keys.insert(node, key);
    }

    /// Look up a node's public key.
    pub fn public_key(&self, node: NodeId) -> Option<PublicKey> {
        self.keys.get(&node).copied()
    }

    /// Verify that `sig` is `node`'s signature over `msg`.
    pub fn verify(&self, node: NodeId, msg: &[u8], sig: &Signature) -> Result<()> {
        let pk = self
            .public_key(node)
            .ok_or_else(|| TransEdgeError::Unknown(format!("no public key for {node}")))?;
        if pk.verify(msg, sig) {
            Ok(())
        } else {
            Err(TransEdgeError::Verification(format!(
                "bad signature from {node}"
            )))
        }
    }

    /// Count how many of the `(signer, signature)` pairs are valid
    /// signatures over `msg` from *distinct* registered nodes. Used for
    /// `f+1` / `2f+1` certificate checks.
    pub fn count_valid(&self, msg: &[u8], sigs: &[(NodeId, Signature)]) -> usize {
        let mut seen = std::collections::HashSet::new();
        sigs.iter()
            .filter(|(node, sig)| seen.insert(*node) && self.verify(*node, msg, sig).is_ok())
            .count()
    }

    /// Require at least `quorum` valid signatures over `msg`.
    pub fn require_quorum(
        &self,
        msg: &[u8],
        sigs: &[(NodeId, Signature)],
        quorum: usize,
    ) -> Result<()> {
        let got = self.count_valid(msg, sigs);
        if got >= quorum {
            Ok(())
        } else {
            Err(TransEdgeError::QuorumNotMet {
                wanted: quorum,
                got,
            })
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transedge_common::ClusterId;

    fn deployment() -> (KeyStore, HashMap<ReplicaId, Keypair>) {
        let topo = ClusterTopology::new(2, 1).unwrap();
        KeyStore::for_topology(&topo, &[42u8; 32])
    }

    #[test]
    fn derivation_is_deterministic() {
        let (a, _) = deployment();
        let (b, _) = deployment();
        let r = NodeId::Replica(ReplicaId::new(ClusterId(0), 0));
        assert_eq!(a.public_key(r), b.public_key(r));
        assert_eq!(a.len(), 8); // 2 clusters × 4 replicas
    }

    #[test]
    fn different_replicas_have_different_keys() {
        let (store, _) = deployment();
        let a = store
            .public_key(NodeId::Replica(ReplicaId::new(ClusterId(0), 0)))
            .unwrap();
        let b = store
            .public_key(NodeId::Replica(ReplicaId::new(ClusterId(0), 1)))
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn verify_via_store() {
        let (store, secrets) = deployment();
        let r = ReplicaId::new(ClusterId(1), 2);
        let sig = secrets[&r].sign(b"batch 7");
        assert!(store.verify(NodeId::Replica(r), b"batch 7", &sig).is_ok());
        assert!(store.verify(NodeId::Replica(r), b"batch 8", &sig).is_err());
        // Signature attributed to the wrong node fails.
        let other = NodeId::Replica(ReplicaId::new(ClusterId(1), 3));
        assert!(store.verify(other, b"batch 7", &sig).is_err());
    }

    #[test]
    fn quorum_counting_dedupes_signers() {
        let (store, secrets) = deployment();
        let r0 = ReplicaId::new(ClusterId(0), 0);
        let r1 = ReplicaId::new(ClusterId(0), 1);
        let msg = b"root";
        let s0 = secrets[&r0].sign(msg);
        let s1 = secrets[&r1].sign(msg);
        // Duplicate signer must count once.
        let sigs = vec![
            (NodeId::Replica(r0), s0),
            (NodeId::Replica(r0), s0),
            (NodeId::Replica(r1), s1),
        ];
        assert_eq!(store.count_valid(msg, &sigs), 2);
        assert!(store.require_quorum(msg, &sigs, 2).is_ok());
        assert_eq!(
            store.require_quorum(msg, &sigs, 3),
            Err(TransEdgeError::QuorumNotMet { wanted: 3, got: 2 })
        );
    }

    #[test]
    fn unknown_signer_is_an_error() {
        let (store, secrets) = deployment();
        let r = ReplicaId::new(ClusterId(0), 0);
        let sig = secrets[&r].sign(b"m");
        let ghost = NodeId::Replica(ReplicaId::new(ClusterId(9), 9));
        assert!(matches!(
            store.verify(ghost, b"m", &sig),
            Err(TransEdgeError::Unknown(_))
        ));
    }
}
