//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used for cheap message-authentication in tests and for deterministic
//! per-node seed derivation in the simulator (deriving many node keys
//! from one experiment seed).

use crate::digest::Digest;
use crate::sha2::Sha256;

const BLOCK: usize = 64;

/// Compute HMAC-SHA-256 over `msg` with `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut k_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k_block[..32].copy_from_slice(kh.as_bytes());
    } else {
        k_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k_block[i];
        opad[i] ^= k_block[i];
    }
    let inner = {
        let mut h = Sha256::new();
        h.update(&ipad);
        h.update(msg);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(&opad);
    h.update(inner.as_bytes());
    h.finalize()
}

/// Derive a 32-byte sub-seed from a master seed and a label.
/// Deterministic: the same `(seed, label)` always produces the same
/// output. This is how simulations derive per-node keypairs.
pub fn derive_seed(master: &[u8; 32], label: &str) -> [u8; 32] {
    hmac_sha256(master, label.as_bytes()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20×0xaa key, 50×0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            out.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        let master = [1u8; 32];
        let a = derive_seed(&master, "replica/0/0");
        let b = derive_seed(&master, "replica/0/0");
        let c = derive_seed(&master, "replica/0/1");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
