//! 32-byte digest newtype.

use std::fmt;

use transedge_common::{Decode, Encode, Result, WireReader, WireWriter};

/// A 256-bit hash value (output of SHA-256 or a Merkle node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    pub const ZERO: Digest = Digest([0u8; 32]);

    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Parse from a lowercase hex string (test vectors).
    pub fn from_hex(hex: &str) -> Option<Digest> {
        let bytes = hex_decode(hex)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest(arr))
    }

    pub fn to_hex(&self) -> String {
        hex_encode(&self.0)
    }

    /// Short prefix for log messages.
    pub fn short(&self) -> String {
        hex_encode(&self.0[..4])
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut WireWriter) {
        w.put_fixed(&self.0);
    }
}

impl Decode for Digest {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Digest(r.get_fixed::<32>()?))
    }
}

/// Lowercase hex encoding (no external hex crate offline).
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Hex decoding; returns `None` on bad length or non-hex characters.
pub fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transedge_common::wire::roundtrip;

    #[test]
    fn hex_roundtrip() {
        let d = Digest([0xAB; 32]);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(hex_decode("0f1e"), Some(vec![0x0f, 0x1e]));
        assert_eq!(hex_decode("0F1E"), Some(vec![0x0f, 0x1e]));
        assert_eq!(hex_decode("xyz"), None);
        assert_eq!(hex_decode("abc"), None); // odd length
    }

    #[test]
    fn wire_roundtrip() {
        roundtrip(&Digest([7; 32]));
    }

    #[test]
    fn from_hex_rejects_wrong_length() {
        assert!(Digest::from_hex("abcd").is_none());
    }
}
