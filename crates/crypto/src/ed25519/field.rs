//! Arithmetic in GF(2²⁵⁵ − 19), the base field of Curve25519.
//!
//! Elements are four little-endian `u64` limbs, kept fully reduced
//! (`< p`) after every operation. Multiplication produces a 512-bit
//! intermediate which is folded using `2²⁵⁶ ≡ 38 (mod p)`.
//!
//! Not constant-time — see the crate-level security disclaimer.
//!
//! `add`/`sub`/`mul`/`neg` deliberately mirror the RFC 8032 pseudocode
//! names rather than operator traits; limb loops index fixed-width
//! arrays on purpose.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// p = 2²⁵⁵ − 19 as little-endian limbs.
pub const P: [u64; 4] = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// An element of GF(2²⁵⁵ − 19), always fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fe(pub [u64; 4]);

#[inline]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// a >= b on raw limb arrays.
#[inline]
pub fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// a - b assuming a >= b.
#[inline]
fn sub_raw(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0;
    for i in 0..4 {
        let (v, br) = sbb(a[i], b[i], borrow);
        out[i] = v;
        borrow = br;
    }
    debug_assert_eq!(borrow, 0);
    out
}

impl Fe {
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// From a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe([v, 0, 0, 0])
    }

    /// Decode 32 little-endian bytes, reducing mod p. The top bit is
    /// *not* masked here; callers decoding point y-coordinates mask it
    /// first.
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut fe = Fe(limbs);
        fe.reduce_once();
        fe.reduce_once();
        fe
    }

    /// Encode as 32 little-endian bytes (fully reduced, so canonical).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    #[inline]
    fn reduce_once(&mut self) {
        if geq(&self.0, &P) {
            self.0 = sub_raw(&self.0, &P);
        }
    }

    pub fn add(self, other: Fe) -> Fe {
        let mut out = [0u64; 4];
        let mut carry = 0;
        for i in 0..4 {
            let (v, c) = adc(self.0[i], other.0[i], carry);
            out[i] = v;
            carry = c;
        }
        // a, b < p < 2²⁵⁵ so the sum < 2²⁵⁶ never carries out, but a
        // carry would mean we must fold 2²⁵⁶ ≡ 38.
        debug_assert_eq!(carry, 0);
        let mut fe = Fe(out);
        fe.reduce_once();
        fe
    }

    pub fn sub(self, other: Fe) -> Fe {
        if geq(&self.0, &other.0) {
            Fe(sub_raw(&self.0, &other.0))
        } else {
            // a + p - b; a + p may overflow 2²⁵⁶? a < p so a + p < 2p < 2²⁵⁶. Safe.
            let mut ap = [0u64; 4];
            let mut carry = 0;
            for i in 0..4 {
                let (v, c) = adc(self.0[i], P[i], carry);
                ap[i] = v;
                carry = c;
            }
            debug_assert_eq!(carry, 0);
            Fe(sub_raw(&ap, &other.0))
        }
    }

    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    pub fn mul(self, other: Fe) -> Fe {
        // Schoolbook 4×4 → 8 limbs.
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = t[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            t[i + 4] = carry as u64;
        }
        reduce_wide(t)
    }

    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Exponentiation by a 256-bit little-endian exponent.
    pub fn pow(self, exp: &[u64; 4]) -> Fe {
        let mut result = Fe::ONE;
        let mut base = self;
        for limb in exp.iter() {
            let mut bits = *limb;
            for _ in 0..64 {
                if bits & 1 == 1 {
                    result = result.mul(base);
                }
                base = base.square();
                bits >>= 1;
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: a^(p−2).
    pub fn invert(self) -> Fe {
        // p - 2
        let exp = [
            0xffff_ffff_ffff_ffeb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x7fff_ffff_ffff_ffff,
        ];
        self.pow(&exp)
    }

    /// a^((p+3)/8) — candidate square root used in point decompression.
    pub fn pow_p38(self) -> Fe {
        // (p + 3) / 8 = (2²⁵⁵ + 16 - 19 + 3... ) computed as constant:
        // p + 3 = 2²⁵⁵ − 16, /8 = 2²⁵² − 2.
        let exp = [
            0xffff_ffff_ffff_fffe,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x0fff_ffff_ffff_ffff,
        ];
        self.pow(&exp)
    }

    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Low bit of the canonical encoding — the "sign" of x in RFC 8032.
    pub fn is_odd(self) -> bool {
        self.0[0] & 1 == 1
    }
}

/// Fold a 512-bit product into a fully reduced element using
/// 2²⁵⁶ ≡ 38 (mod p).
fn reduce_wide(t: [u64; 8]) -> Fe {
    // value = hi·2²⁵⁶ + lo ≡ hi·38 + lo.
    let lo = [t[0], t[1], t[2], t[3]];
    let hi = [t[4], t[5], t[6], t[7]];
    // hi·38 → 5 limbs.
    let mut prod = [0u64; 5];
    let mut carry: u128 = 0;
    for i in 0..4 {
        let cur = hi[i] as u128 * 38 + carry;
        prod[i] = cur as u64;
        carry = cur >> 64;
    }
    prod[4] = carry as u64;
    // lo + prod → 5 limbs.
    let mut sum = [0u64; 5];
    let mut c = 0u64;
    for i in 0..4 {
        let (v, cc) = adc(lo[i], prod[i], c);
        sum[i] = v;
        c = cc;
    }
    sum[4] = prod[4] + c;
    // Fold again: sum = top·2²⁵⁶ + low256 ≡ top·38 + low256, top ≤ ~2⁶.
    let top = sum[4];
    let mut out = [sum[0], sum[1], sum[2], sum[3]];
    let mut carry = (top as u128) * 38;
    for limb in out.iter_mut() {
        let cur = *limb as u128 + (carry & 0xffff_ffff_ffff_ffff);
        *limb = cur as u64;
        carry = (carry >> 64) + (cur >> 64);
    }
    // A final carry out of the top limb is ≡ another 38.
    while carry != 0 {
        let mut c2 = carry * 38;
        for limb in out.iter_mut() {
            let cur = *limb as u128 + (c2 & 0xffff_ffff_ffff_ffff);
            *limb = cur as u64;
            c2 = (c2 >> 64) + (cur >> 64);
        }
        carry = c2;
    }
    let mut fe = Fe(out);
    fe.reduce_once();
    fe.reduce_once();
    fe
}

/// sqrt(−1) mod p, computed as 2^((p−1)/4) at first use.
pub fn sqrt_m1() -> Fe {
    use std::sync::OnceLock;
    static V: OnceLock<Fe> = OnceLock::new();
    *V.get_or_init(|| {
        // (p − 1) / 4 = 2²⁵³ − 5
        let exp = [
            0xffff_ffff_ffff_fffb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x1fff_ffff_ffff_ffff,
        ];
        Fe::from_u64(2).pow(&exp)
    })
}

/// The twisted Edwards `d` parameter: −121665/121666 mod p.
pub fn curve_d() -> Fe {
    use std::sync::OnceLock;
    static V: OnceLock<Fe> = OnceLock::new();
    *V.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(12345);
        let b = fe(67890);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(b).add(b), a);
        assert_eq!(a.sub(a), Fe::ZERO);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = fe(999);
        assert_eq!(a.add(a.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_matches_small_integers() {
        assert_eq!(fe(7).mul(fe(6)), fe(42));
        assert_eq!(fe(0).mul(fe(12345)), Fe::ZERO);
        assert_eq!(fe(1).mul(fe(12345)), fe(12345));
    }

    #[test]
    fn wraparound_at_p() {
        // (p − 1) + 2 == 1
        let p_minus_1 = Fe(P).sub(Fe::ONE); // note: Fe(P) reduces? Fe(P) raw = p, not reduced!
                                            // Construct p−1 properly: 0 − 1 mod p.
        let pm1 = Fe::ZERO.sub(Fe::ONE);
        assert_eq!(pm1.add(fe(2)), Fe::ONE);
        // And 2·(p−1) == p−2 == −2
        assert_eq!(pm1.add(pm1), fe(2).neg());
        let _ = p_minus_1;
    }

    #[test]
    fn invert_gives_one() {
        for v in [1u64, 2, 3, 121665, 121666, u64::MAX] {
            let a = fe(v);
            assert_eq!(a.mul(a.invert()), Fe::ONE, "v = {v}");
        }
    }

    #[test]
    fn distributivity() {
        let a = fe(0xdead_beef);
        let b = fe(0xcafe_babe);
        let c = fe(0x1234_5678);
        assert_eq!(a.add(b).mul(c), a.mul(c).add(b.mul(c)));
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert_eq!(i.square(), Fe::ONE.neg());
    }

    #[test]
    fn bytes_roundtrip_canonical() {
        let a = fe(123456789).mul(fe(987654321));
        assert_eq!(Fe::from_bytes(&a.to_bytes()), a);
        // Non-canonical encodings (>= p) reduce.
        let mut p_bytes = [0u8; 32];
        for (i, limb) in P.iter().enumerate() {
            p_bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Fe::from_bytes(&p_bytes), Fe::ZERO);
    }

    #[test]
    fn pow_small_exponents() {
        let a = fe(3);
        assert_eq!(a.pow(&[0, 0, 0, 0]), Fe::ONE);
        assert_eq!(a.pow(&[1, 0, 0, 0]), a);
        assert_eq!(a.pow(&[5, 0, 0, 0]), fe(243));
    }

    #[test]
    fn curve_d_satisfies_definition() {
        // d · 121666 == −121665
        assert_eq!(curve_d().mul(fe(121666)), fe(121665).neg());
    }

    #[test]
    fn square_equals_mul_self() {
        let a = Fe::from_bytes(&[0x42; 32]);
        assert_eq!(a.square(), a.mul(a));
    }
}
