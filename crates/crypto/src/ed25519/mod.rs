//! Ed25519 signatures (RFC 8032), from scratch.
//!
//! Each TransEdge edge node holds a unique keypair and signs every
//! protocol message it emits (paper §2, "Interface"); clients verify
//! `f+1` replica signatures on Merkle roots and batch certificates.
//!
//! Layout: [`field`] implements GF(2²⁵⁵−19), [`scalar`] arithmetic mod
//! the group order L, [`point`] the twisted Edwards group; this module
//! implements key expansion, signing and verification on top.
//!
//! Verification is *strict* about encodings: non-canonical `S` values
//! (≥ L) are rejected, closing the classic malleability hole.

pub mod field;
pub mod point;
pub mod scalar;

use std::fmt;

use rand::RngCore;
use transedge_common::{Decode, Encode, Result, TransEdgeError, WireReader, WireWriter};

use crate::digest::{hex_decode, hex_encode};
use crate::sha2::Sha512;
use point::Point;
use scalar::Scalar;

/// A 32-byte Ed25519 public key (compressed point).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PublicKey(pub [u8; 32]);

/// A 64-byte Ed25519 signature: R (compressed point) ‖ S (scalar).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 64]);

/// Secret signing key (seed + cached expansion) with its public key.
#[derive(Clone)]
pub struct Keypair {
    seed: [u8; 32],
    /// Clamped secret scalar `s` (reduced mod L — harmless, see sign()).
    s: Scalar,
    /// The `prefix` half of SHA-512(seed), used to derive nonces.
    prefix: [u8; 32],
    public: PublicKey,
}

impl Keypair {
    /// Deterministic key derivation from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let h = {
            let mut hh = Sha512::new();
            hh.update(&seed);
            hh.finalize()
        };
        let mut s_bytes: [u8; 32] = h[..32].try_into().unwrap();
        // Clamp: clear the low 3 bits, clear the top bit, set bit 254.
        s_bytes[0] &= 0xf8;
        s_bytes[31] &= 0x7f;
        s_bytes[31] |= 0x40;
        // Reducing mod L before the point multiplication is sound:
        // [a]B depends only on a mod L, and S = r + k·a is computed
        // mod L anyway.
        let s = Scalar::from_bytes(&s_bytes);
        let prefix: [u8; 32] = h[32..].try_into().unwrap();
        let public = PublicKey(Point::base_mul(&s).compress());
        Keypair {
            seed,
            s,
            prefix,
            public,
        }
    }

    /// Random keypair from the supplied RNG (tests, simulations).
    pub fn generate<R: RngCore>(rng: &mut R) -> Keypair {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Keypair::from_seed(seed)
    }

    pub fn public(&self) -> PublicKey {
        self.public
    }

    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Sign a message (RFC 8032 §5.1.6). Deterministic.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let r = {
            let mut h = Sha512::new();
            h.update(&self.prefix);
            h.update(msg);
            Scalar::from_bytes_wide(&h.finalize())
        };
        let r_point = Point::base_mul(&r);
        let r_enc = r_point.compress();
        let k = {
            let mut h = Sha512::new();
            h.update(&r_enc);
            h.update(&self.public.0);
            h.update(msg);
            Scalar::from_bytes_wide(&h.finalize())
        };
        let s = Scalar::muladd(k, self.s, r);
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_enc);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

impl PublicKey {
    /// Verify a signature over `msg`. Strict: rejects non-canonical S
    /// and invalid point encodings.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let r_enc: [u8; 32] = sig.0[..32].try_into().unwrap();
        let s_bytes: [u8; 32] = sig.0[32..].try_into().unwrap();
        let Some(s) = Scalar::from_canonical_bytes(&s_bytes) else {
            return false;
        };
        let Some(a) = Point::decompress(&self.0) else {
            return false;
        };
        let Some(r) = Point::decompress(&r_enc) else {
            return false;
        };
        let k = {
            let mut h = Sha512::new();
            h.update(&r_enc);
            h.update(&self.0);
            h.update(msg);
            Scalar::from_bytes_wide(&h.finalize())
        };
        // [S]B == R + [k]A
        let lhs = Point::base_mul(&s);
        let rhs = r.add(&a.mul(&k));
        lhs.eq_point(&rhs)
    }

    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    pub fn from_hex(hex: &str) -> Option<PublicKey> {
        let v = hex_decode(hex)?;
        Some(PublicKey(v.try_into().ok()?))
    }
}

impl Signature {
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }

    pub fn from_hex(hex: &str) -> Option<Signature> {
        let v = hex_decode(hex)?;
        Some(Signature(v.try_into().ok()?))
    }

    pub fn to_hex(&self) -> String {
        hex_encode(&self.0)
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({}…)", hex_encode(&self.0[..4]))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}…)", hex_encode(&self.0[..4]))
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut WireWriter) {
        w.put_fixed(&self.0);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(PublicKey(r.get_fixed::<32>()?))
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut WireWriter) {
        w.put_fixed(&self.0);
    }
}

impl Decode for Signature {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(Signature(r.get_fixed::<64>()?))
    }
}

/// Free-function verify mirroring [`PublicKey::verify`], returning a
/// typed error for protocol code that wants to bubble context.
pub fn verify_strict(pk: &PublicKey, msg: &[u8], sig: &Signature) -> Result<()> {
    if pk.verify(msg, sig) {
        Ok(())
    } else {
        Err(TransEdgeError::Verification("bad ed25519 signature".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hex_decode;

    fn seed_from_hex(hex: &str) -> [u8; 32] {
        hex_decode(hex).unwrap().try_into().unwrap()
    }

    // RFC 8032 §7.1 TEST 1
    #[test]
    fn rfc8032_test1_public_key() {
        let kp = Keypair::from_seed(seed_from_hex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            hex_encode(kp.public().as_bytes()),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
    }

    #[test]
    fn rfc8032_test1_signature() {
        let kp = Keypair::from_seed(seed_from_hex(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        let sig = kp.sign(b"");
        assert_eq!(
            sig.to_hex(),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public().verify(b"", &sig));
    }

    // RFC 8032 §7.1 TEST 2
    #[test]
    fn rfc8032_test2() {
        let kp = Keypair::from_seed(seed_from_hex(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            hex_encode(kp.public().as_bytes()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = kp.sign(&[0x72]);
        assert_eq!(
            sig.to_hex(),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public().verify(&[0x72], &sig));
    }

    // RFC 8032 §7.1 TEST 3
    #[test]
    fn rfc8032_test3() {
        let kp = Keypair::from_seed(seed_from_hex(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            hex_encode(kp.public().as_bytes()),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let sig = kp.sign(&[0xaf, 0x82]);
        assert_eq!(
            sig.to_hex(),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
                .replace(char::is_whitespace, "")
        );
        assert!(kp.public().verify(&[0xaf, 0x82], &sig));
    }

    #[test]
    fn sign_verify_roundtrip_random_keys() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 104729);
        for i in 0..5 {
            let kp = Keypair::generate(&mut rng);
            let msg = format!("message number {i}");
            let sig = kp.sign(msg.as_bytes());
            assert!(kp.public().verify(msg.as_bytes(), &sig));
        }
    }

    #[test]
    fn tampered_message_fails() {
        let kp = Keypair::from_seed([7u8; 32]);
        let sig = kp.sign(b"pay alice 10");
        assert!(!kp.public().verify(b"pay alice 11", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::from_seed([7u8; 32]);
        let mut sig = kp.sign(b"hello");
        sig.0[5] ^= 0x01;
        assert!(!kp.public().verify(b"hello", &sig));
        let mut sig2 = kp.sign(b"hello");
        sig2.0[40] ^= 0x80; // flip inside S
        assert!(!kp.public().verify(b"hello", &sig2));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = Keypair::from_seed([1u8; 32]);
        let kp2 = Keypair::from_seed([2u8; 32]);
        let sig = kp1.sign(b"hello");
        assert!(!kp2.public().verify(b"hello", &sig));
    }

    #[test]
    fn malleability_rejected() {
        // S' = S + L re-encodes the same residue non-canonically; a
        // strict verifier must reject it.
        let kp = Keypair::from_seed([9u8; 32]);
        let sig = kp.sign(b"msg");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().unwrap();
        // add L to S as 256-bit little-endian integers
        let mut s_limbs = [0u64; 4];
        for (i, c) in s_bytes.chunks_exact(8).enumerate() {
            s_limbs[i] = u64::from_le_bytes(c.try_into().unwrap());
        }
        let mut carry = 0u64;
        for (limb, l) in s_limbs.iter_mut().zip(super::scalar::L) {
            let t = *limb as u128 + l as u128 + carry as u128;
            *limb = t as u64;
            carry = (t >> 64) as u64;
        }
        // If adding L overflowed 256 bits the encoding isn't even
        // representable; skip in that (improbable) case.
        if carry == 0 {
            let mut forged = sig;
            for (i, limb) in s_limbs.iter().enumerate() {
                forged.0[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
            }
            assert!(!kp.public().verify(b"msg", &forged));
        }
    }

    #[test]
    fn signing_is_deterministic() {
        let kp = Keypair::from_seed([3u8; 32]);
        assert_eq!(kp.sign(b"x").0.to_vec(), kp.sign(b"x").0.to_vec());
    }

    #[test]
    fn wire_roundtrip() {
        use transedge_common::wire::roundtrip;
        let kp = Keypair::from_seed([4u8; 32]);
        roundtrip(&kp.public());
        // Signature lacks PartialEq via derive? It has; roundtrip needs Debug+PartialEq.
        let sig = kp.sign(b"wire");
        let bytes = sig.encode_to_vec();
        let back = Signature::decode_all(&bytes).unwrap();
        assert_eq!(back.0.to_vec(), sig.0.to_vec());
    }

    #[test]
    fn verify_strict_returns_typed_error() {
        let kp = Keypair::from_seed([5u8; 32]);
        let sig = kp.sign(b"ok");
        assert!(verify_strict(&kp.public(), b"ok", &sig).is_ok());
        assert!(verify_strict(&kp.public(), b"no", &sig).is_err());
    }
}
