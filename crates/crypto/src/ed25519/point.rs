//! Points on edwards25519 in extended twisted Edwards coordinates.
//!
//! The curve is −x² + y² = 1 + d·x²·y² over GF(2²⁵⁵−19) with
//! d = −121665/121666. A point is (X : Y : Z : T) with x = X/Z,
//! y = Y/Z, T = XY/Z. Formulas are the standard a = −1 "extended
//! coordinates" addition/doubling (Hisil et al., as used by RFC 8032).

#![allow(clippy::needless_range_loop)]

use super::field::{curve_d, sqrt_m1, Fe};
use super::scalar::Scalar;

/// A curve point in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    pub x: Fe,
    pub y: Fe,
    pub z: Fe,
    pub t: Fe,
}

impl Point {
    /// The identity element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard base point B with y = 4/5 and x even.
    pub fn base() -> Point {
        use std::sync::OnceLock;
        static B: OnceLock<Point> = OnceLock::new();
        *B.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0: the even root
            Point::decompress(&enc).expect("base point decompression")
        })
    }

    /// Point addition (complete formula for a = −1).
    pub fn add(&self, other: &Point) -> Point {
        let d2 = curve_d().add(curve_d());
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(d2).mul(other.t);
        let d = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Negation: (x, y) → (−x, y).
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication with a 4-bit fixed window.
    /// Not constant-time (see crate docs).
    pub fn mul(&self, s: &Scalar) -> Point {
        // Table of 1·P … 15·P.
        let mut table = [*self; 15];
        for i in 1..15 {
            table[i] = table[i - 1].add(self);
        }
        let mut acc = Point::identity();
        let mut started = false;
        // 64 windows of 4 bits, MSB-first.
        for w in (0..64).rev() {
            if started {
                acc = acc.double();
                acc = acc.double();
                acc = acc.double();
                acc = acc.double();
            }
            let digit = ((s.0[w / 16] >> ((w % 16) * 4)) & 0xF) as usize;
            if digit != 0 {
                acc = if started {
                    acc.add(&table[digit - 1])
                } else {
                    table[digit - 1]
                };
                started = true;
            }
        }
        acc
    }

    /// Fixed-base scalar multiplication `s·B` using a global
    /// precomputed table (`d·16^w·B` for every window `w` and digit
    /// `d`). One table build per process; used by signing and by the
    /// `[S]B` half of verification.
    pub fn base_mul(s: &Scalar) -> Point {
        use std::sync::OnceLock;
        static TABLE: OnceLock<Vec<[Point; 15]>> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            let mut t = Vec::with_capacity(64);
            let mut window_base = Point::base(); // 16^w · B
            for _ in 0..64 {
                let mut row = [window_base; 15];
                for d in 1..15 {
                    row[d] = row[d - 1].add(&window_base);
                }
                t.push(row);
                // Advance to the next window: ×16.
                window_base = row[14].add(&window_base); // 16·(16^w·B)
            }
            t
        });
        let mut acc = Point::identity();
        let mut started = false;
        for w in 0..64 {
            let digit = ((s.0[w / 16] >> ((w % 16) * 4)) & 0xF) as usize;
            if digit != 0 {
                acc = if started {
                    acc.add(&table[w][digit - 1])
                } else {
                    table[w][digit - 1]
                };
                started = true;
            }
        }
        acc
    }

    /// s1·P1 + s2·P2 — used by signature verification.
    pub fn double_scalar_mul(p1: &Point, s1: &Scalar, p2: &Point, s2: &Scalar) -> Point {
        p1.mul(s1).add(&p2.mul(s2))
    }

    /// Affine coordinates (x, y).
    pub fn to_affine(&self) -> (Fe, Fe) {
        let zi = self.z.invert();
        (self.x.mul(zi), self.y.mul(zi))
    }

    /// RFC 8032 point encoding: 32 bytes = y (LE) with the top bit set
    /// to the parity ("sign") of x.
    pub fn compress(&self) -> [u8; 32] {
        let (x, y) = self.to_affine();
        let mut out = y.to_bytes();
        if x.is_odd() {
            out[31] |= 0x80;
        }
        out
    }

    /// RFC 8032 point decoding. Returns `None` if the encoding is not
    /// a curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = Fe::from_bytes(&y_bytes);
        // x² = (y² − 1) / (d·y² + 1)
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = curve_d().mul(yy).add(Fe::ONE);
        let x2 = u.mul(v.invert());
        let mut x = x2.pow_p38();
        if x.square() != x2 {
            x = x.mul(sqrt_m1());
        }
        if x.square() != x2 {
            return None;
        }
        if x.is_zero() && sign == 1 {
            return None; // −0 is not a valid encoding
        }
        if (x.is_odd() as u8) != sign {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Check the curve equation −x² + y² = 1 + d·x²·y² in affine
    /// coordinates.
    pub fn is_on_curve(&self) -> bool {
        let (x, y) = self.to_affine();
        let x2 = x.square();
        let y2 = y.square();
        let lhs = y2.sub(x2);
        let rhs = Fe::ONE.add(curve_d().mul(x2).mul(y2));
        lhs == rhs
    }

    /// Equality in the projective sense (compare affine forms).
    pub fn eq_point(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  ⟺  x1·z2 == x2·z1 (and same for y)
        self.x.mul(other.z) == other.x.mul(self.z) && self.y.mul(other.z) == other.y.mul(self.z)
    }

    pub fn is_identity(&self) -> bool {
        self.eq_point(&Point::identity())
    }
}

#[cfg(test)]
mod tests {
    use super::super::scalar::L;
    use super::*;

    #[test]
    fn base_point_is_on_curve() {
        assert!(Point::base().is_on_curve());
    }

    #[test]
    fn base_point_matches_rfc8032_x_parity() {
        let (x, y) = Point::base().to_affine();
        assert!(!x.is_odd(), "B_x is even per RFC 8032");
        assert_eq!(y, Fe::from_u64(4).mul(Fe::from_u64(5).invert()));
    }

    #[test]
    fn identity_laws() {
        let b = Point::base();
        let id = Point::identity();
        assert!(b.add(&id).eq_point(&b));
        assert!(id.add(&b).eq_point(&b));
        assert!(id.double().eq_point(&id));
        assert!(b.add(&b.neg()).eq_point(&id));
    }

    #[test]
    fn double_equals_add_self() {
        let b = Point::base();
        assert!(b.double().eq_point(&b.add(&b)));
        let b4a = b.double().double();
        let b4b = b.add(&b).add(&b).add(&b);
        assert!(b4a.eq_point(&b4b));
        assert!(b4a.is_on_curve());
    }

    #[test]
    fn group_order_annihilates_base() {
        // [L]B == identity — a strong self-check of both the point code
        // and the L constant.
        let l = Scalar(L);
        // Scalar(L) is not reduced (== L ≡ 0 mod L), so multiply by raw
        // bits instead: build the unreduced scalar bit iterator inline.
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (l.0[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(&Point::base());
            }
        }
        assert!(acc.is_identity());
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let b = Point::base();
        let mut acc = Point::identity();
        for k in 0u64..12 {
            assert!(
                b.mul(&Scalar::from_u64(k)).eq_point(&acc),
                "k = {k} mismatch"
            );
            acc = acc.add(&b);
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = Point::base();
        let s3 = Scalar::from_u64(3);
        let s5 = Scalar::from_u64(5);
        let lhs = b.mul(&s3.add(s5));
        let rhs = b.mul(&s3).add(&b.mul(&s5));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn compress_decompress_roundtrip() {
        for k in 1u64..8 {
            let p = Point::base().mul(&Scalar::from_u64(k));
            let enc = p.compress();
            let back = Point::decompress(&enc).expect("valid encoding");
            assert!(back.eq_point(&p), "k = {k}");
            assert!(back.is_on_curve());
        }
    }

    #[test]
    fn decompress_rejects_non_points() {
        // y = 2 gives x² a non-square for edwards25519? Try a few and
        // expect at least one rejection across candidates. A byte
        // pattern that is definitely invalid: y such that v = 0 can't
        // happen (d·y²+1 ≠ 0 has no roots since -1/d is non-square);
        // so probe candidates and verify any accepted point is on-curve.
        let mut rejected = 0;
        for b0 in 0u8..16 {
            let mut enc = [0u8; 32];
            enc[0] = b0;
            enc[1] = 0xEE;
            match Point::decompress(&enc) {
                None => rejected += 1,
                Some(p) => assert!(p.is_on_curve()),
            }
        }
        assert!(rejected > 0, "expected some non-points among probes");
    }

    #[test]
    fn double_scalar_mul_matches_separate() {
        let b = Point::base();
        let p = b.mul(&Scalar::from_u64(9));
        let s1 = Scalar::from_u64(4);
        let s2 = Scalar::from_u64(7);
        let lhs = Point::double_scalar_mul(&b, &s1, &p, &s2);
        let rhs = b.mul(&s1).add(&p.mul(&s2));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn base_mul_matches_generic_mul() {
        for k in [0u64, 1, 2, 7, 255, 256, 0xFFFF_FFFF, u64::MAX] {
            let s = Scalar::from_u64(k);
            assert!(
                Point::base_mul(&s).eq_point(&Point::base().mul(&s)),
                "k = {k}"
            );
        }
        // A full-width scalar too.
        let s = Scalar::from_bytes(&[0xA7; 32]);
        assert!(Point::base_mul(&s).eq_point(&Point::base().mul(&s)));
    }

    #[test]
    fn cofactor_structure() {
        // 8·B has order L/gcd.. — B is in the prime-order subgroup, so
        // [8]B ≠ identity and is on-curve.
        let p8 = Point::base().mul(&Scalar::from_u64(8));
        assert!(!p8.is_identity());
        assert!(p8.is_on_curve());
    }
}
