//! Arithmetic modulo the Ed25519 group order
//! L = 2²⁵² + 27742317777372353535851937790883648493.
//!
//! Signatures need `r + k·s mod L` with 512-bit inputs (SHA-512
//! outputs). Reduction uses simple binary long division over u64 limbs
//! — a few microseconds per reduction, irrelevant next to the point
//! multiplications, and easy to audit.

#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// L as little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar in [0, L).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar(pub [u64; 4]);

fn geq_n(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// a -= b in place (a >= b), equal lengths.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let t = (a[i] as u128).wrapping_sub(b[i] as u128 + borrow as u128);
        a[i] = t as u64;
        borrow = ((t >> 64) as u64) & 1;
    }
    debug_assert_eq!(borrow, 0);
}

/// Reduce an arbitrary little-endian limb value mod L by binary long
/// division: repeatedly subtract shifted copies of L.
fn reduce_limbs(value: &[u64]) -> [u64; 4] {
    let n = value.len();
    let mut rem = value.to_vec();
    // Highest shift where L << shift could still be <= value:
    // value < 2^(64n), L >= 2^252, so shift <= 64n - 252.
    let max_shift = (64 * n).saturating_sub(252);
    for shift in (0..=max_shift).rev() {
        // Build L << shift into an n-limb buffer (skip if it overflows n limbs).
        let word = shift / 64;
        let bits = shift % 64;
        let mut shifted = vec![0u64; n];
        let mut overflow = false;
        for (i, &limb) in L.iter().enumerate() {
            if limb == 0 {
                continue;
            }
            let lo_idx = i + word;
            if lo_idx < n {
                shifted[lo_idx] |= limb << bits;
            } else if limb << bits != 0 {
                overflow = true;
            }
            if bits > 0 {
                let hi = limb >> (64 - bits);
                if hi != 0 {
                    let hi_idx = i + word + 1;
                    if hi_idx < n {
                        shifted[hi_idx] |= hi;
                    } else {
                        overflow = true;
                    }
                }
            }
        }
        if overflow {
            continue;
        }
        if geq_n(&rem, &shifted) {
            sub_in_place(&mut rem, &shifted);
        }
    }
    let mut out = [0u64; 4];
    out.copy_from_slice(&rem[..4]);
    for &limb in &rem[4..] {
        debug_assert_eq!(limb, 0);
    }
    debug_assert!(!geq_n(&out, &L));
    out
}

impl Scalar {
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    pub fn from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    /// Interpret 32 little-endian bytes, reducing mod L.
    pub fn from_bytes(bytes: &[u8; 32]) -> Scalar {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        Scalar(reduce_limbs(&limbs))
    }

    /// Interpret 32 little-endian bytes *without* reduction, if already
    /// canonical (`< L`). Returns `None` otherwise — used by signature
    /// verification to reject malleable encodings.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if geq_n(&limbs, &L) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Reduce a 64-byte little-endian value (SHA-512 output) mod L.
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        Scalar(reduce_limbs(&limbs))
    }

    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    pub fn add(self, other: Scalar) -> Scalar {
        let mut limbs = [0u64; 5];
        let mut carry = 0u64;
        for i in 0..4 {
            let t = self.0[i] as u128 + other.0[i] as u128 + carry as u128;
            limbs[i] = t as u64;
            carry = (t >> 64) as u64;
        }
        limbs[4] = carry;
        Scalar(reduce_limbs(&limbs))
    }

    pub fn mul(self, other: Scalar) -> Scalar {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = t[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            t[i + 4] = carry as u64;
        }
        Scalar(reduce_limbs(&t))
    }

    /// r + k·s mod L — the Ed25519 signing equation.
    pub fn muladd(k: Scalar, s: Scalar, r: Scalar) -> Scalar {
        k.mul(s).add(r)
    }

    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Iterate bits LSB→MSB.
    pub fn bit(self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_equals_2_252_plus_constant() {
        // Cross-check the hex limbs of L against its defining decimal
        // form: L = 2²⁵² + 27742317777372353535851937790883648493.
        // Build the decimal constant with schoolbook ×10 + digit.
        let dec = "27742317777372353535851937790883648493";
        let mut acc = [0u64; 4];
        for d in dec.bytes() {
            // acc = acc * 10 + (d - '0')
            let mut carry = (d - b'0') as u128;
            for limb in acc.iter_mut() {
                let cur = *limb as u128 * 10 + carry;
                *limb = cur as u64;
                carry = cur >> 64;
            }
            assert_eq!(carry, 0);
        }
        // add 2^252
        acc[3] += 1u64 << 60;
        assert_eq!(acc, L);
    }

    #[test]
    fn add_wraps_mod_l() {
        let lm1 = Scalar([L[0] - 1, L[1], L[2], L[3]]); // L - 1
        assert_eq!(lm1.add(Scalar::ONE), Scalar::ZERO);
        assert_eq!(lm1.add(Scalar::from_u64(3)), Scalar::from_u64(2));
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(
            Scalar::from_u64(7).mul(Scalar::from_u64(8)),
            Scalar::from_u64(56)
        );
        assert_eq!(Scalar::ZERO.mul(Scalar::from_u64(8)), Scalar::ZERO);
    }

    #[test]
    fn from_bytes_reduces() {
        // All-ones 32 bytes is > L and must reduce to a value < L.
        let s = Scalar::from_bytes(&[0xFF; 32]);
        assert!(geq_n(&L, &s.0));
        assert_ne!(s.0, [0xFFFF_FFFF_FFFF_FFFF; 4]);
    }

    #[test]
    fn canonical_bytes_rejects_non_canonical() {
        assert!(Scalar::from_canonical_bytes(&[0xFF; 32]).is_none());
        let mut l_bytes = [0u8; 32];
        for (i, limb) in L.iter().enumerate() {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
        // L - 1 is canonical.
        l_bytes[0] -= 1;
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_some());
        assert!(Scalar::from_canonical_bytes(&[0u8; 32]).is_some());
    }

    #[test]
    fn wide_reduction_matches_composed_arithmetic() {
        // (2^256 mod L) computed two ways: wide reduction of 2^256, and
        // ((2^128 mod L)^2) via mul.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let a = Scalar::from_bytes_wide(&wide);
        let mut b128 = [0u8; 32];
        b128[16] = 1; // 2^128
        let b = Scalar::from_bytes(&b128);
        assert_eq!(a, b.mul(b));
    }

    #[test]
    fn roundtrip_bytes() {
        let s = Scalar::from_bytes(&[7u8; 32]);
        assert_eq!(Scalar::from_bytes(&s.to_bytes()), s);
    }

    #[test]
    fn muladd_matches_definition() {
        let k = Scalar::from_u64(3);
        let s = Scalar::from_u64(5);
        let r = Scalar::from_u64(11);
        assert_eq!(Scalar::muladd(k, s, r), Scalar::from_u64(26));
    }

    #[test]
    fn bit_access() {
        let s = Scalar::from_u64(0b1010);
        assert!(!s.bit(0));
        assert!(s.bit(1));
        assert!(!s.bit(2));
        assert!(s.bit(3));
        assert!(!s.bit(255));
    }
}
