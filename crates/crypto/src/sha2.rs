//! SHA-256 and SHA-512 (FIPS 180-4), from scratch.
//!
//! The 64 + 80 round constants and the initial hash states are not
//! transcribed from the standard — they are *derived* at first use:
//! FIPS 180-4 defines them as the first 32/64 bits of the fractional
//! parts of the square roots (initial state) and cube roots (round
//! constants) of the first primes. We compute those fractional parts
//! exactly with integer binary search over multi-limb products, which
//! removes any chance of a transcription typo. The standard test
//! vectors below then pin the whole construction.

use std::sync::OnceLock;

use crate::digest::Digest;

// ---------------------------------------------------------------------------
// Exact constant derivation
// ---------------------------------------------------------------------------

/// Schoolbook multiply of little-endian u64 limb slices.
fn mul_limbs(a: &[u64], b: &[u64], out: &mut [u64]) {
    for o in out.iter_mut() {
        *o = 0;
    }
    for (i, &ai) in a.iter().enumerate() {
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
}

/// Lexicographic compare of little-endian limb slices (equal length).
fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// `floor(sqrt(p) * 2^64) mod 2^64` — the first 64 fractional bits of
/// `sqrt(p)` for non-square `p`.
fn sqrt_frac64(p: u64) -> u64 {
    // Find x = floor(sqrt(p * 2^128)) by binary search; x < 2^68 for
    // p < 2^8 but we allow any u64 p. x fits u128.
    let target = [0u64, 0, p, 0]; // p * 2^128 as 4 limbs
    let mut lo: u128 = 0;
    let mut hi: u128 = 1u128 << 96; // sqrt(2^64 * 2^128) = 2^96
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let m = [mid as u64, (mid >> 64) as u64];
        let mut sq = [0u64; 4];
        mul_limbs(&m, &m, &mut sq);
        if cmp_limbs(&sq, &target) != std::cmp::Ordering::Greater {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u64
}

/// `floor(cbrt(p) * 2^64) mod 2^64` — the first 64 fractional bits of
/// `cbrt(p)` for non-cube `p`.
fn cbrt_frac64(p: u64) -> u64 {
    // Find x = floor(cbrt(p * 2^192)); x < 2^(64 + ceil(log2(p)/3) + 1).
    let target = [0u64, 0, 0, p, 0, 0]; // p * 2^192 as 6 limbs
    let mut lo: u128 = 0;
    let mut hi: u128 = 1u128 << 86; // cbrt(2^64 * 2^192) ≈ 2^85.3
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let m = [mid as u64, (mid >> 64) as u64];
        let mut sq = [0u64; 4];
        mul_limbs(&m, &m, &mut sq);
        let mut cu = [0u64; 6];
        mul_limbs(&sq, &m, &mut cu);
        if cmp_limbs(&cu, &target) != std::cmp::Ordering::Greater {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as u64
}

/// First `n` primes by trial division (n ≤ 80, tiny).
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes.iter().all(|&p| !cand.is_multiple_of(p)) {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

struct Sha256Consts {
    h0: [u32; 8],
    k: [u32; 64],
}

struct Sha512Consts {
    h0: [u64; 8],
    k: [u64; 80],
}

fn sha256_consts() -> &'static Sha256Consts {
    static C: OnceLock<Sha256Consts> = OnceLock::new();
    C.get_or_init(|| {
        let primes = first_primes(64);
        let mut h0 = [0u32; 8];
        for (i, h) in h0.iter_mut().enumerate() {
            *h = (sqrt_frac64(primes[i]) >> 32) as u32;
        }
        let mut k = [0u32; 64];
        for (i, kk) in k.iter_mut().enumerate() {
            *kk = (cbrt_frac64(primes[i]) >> 32) as u32;
        }
        Sha256Consts { h0, k }
    })
}

fn sha512_consts() -> &'static Sha512Consts {
    static C: OnceLock<Sha512Consts> = OnceLock::new();
    C.get_or_init(|| {
        let primes = first_primes(80);
        let mut h0 = [0u64; 8];
        for (i, h) in h0.iter_mut().enumerate() {
            *h = sqrt_frac64(primes[i]);
        }
        let mut k = [0u64; 80];
        for (i, kk) in k.iter_mut().enumerate() {
            *kk = cbrt_frac64(primes[i]);
        }
        Sha512Consts { h0, k }
    })
}

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: sha256_consts().h0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Bypass total_len accounting while flushing padding.
        let mut data = &pad[..pad_len + 8];
        if self.buf_len > 0 {
            let take = 64 - self.buf_len;
            self.buf[self.buf_len..].copy_from_slice(&data[..take]);
            let block = self.buf;
            self.compress(&block);
            data = &data[take..];
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        debug_assert!(data.is_empty());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let k = &sha256_consts().k;
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(k[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// SHA-512
// ---------------------------------------------------------------------------

/// Streaming SHA-512 hasher (needed by Ed25519).
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buf: [u8; 128],
    buf_len: usize,
    total_len: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    pub fn new() -> Self {
        Sha512 {
            state: sha512_consts().h0,
            buf: [0; 128],
            buf_len: 0,
            total_len: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        if self.buf_len > 0 {
            let take = (128 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 128 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 128 {
            let (block, rest) = data.split_at(128);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finalize into the full 64-byte output.
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad = [0u8; 144];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 112 {
            112 - self.buf_len
        } else {
            240 - self.buf_len
        };
        pad[pad_len..pad_len + 16].copy_from_slice(&bit_len.to_be_bytes());
        let mut data = &pad[..pad_len + 16];
        if self.buf_len > 0 {
            let take = 128 - self.buf_len;
            self.buf[self.buf_len..].copy_from_slice(&data[..take]);
            let block = self.buf;
            self.compress(&block);
            data = &data[take..];
        }
        while data.len() >= 128 {
            let (block, rest) = data.split_at(128);
            self.compress(block.try_into().unwrap());
            data = rest;
        }
        debug_assert!(data.is_empty());
        let mut out = [0u8; 64];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let k = &sha512_consts().k;
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            w[i] = u64::from_be_bytes(chunk.try_into().unwrap());
        }
        for t in 16..80 {
            let s0 = w[t - 15].rotate_right(1) ^ w[t - 15].rotate_right(8) ^ (w[t - 15] >> 7);
            let s1 = w[t - 2].rotate_right(19) ^ w[t - 2].rotate_right(61) ^ (w[t - 2] >> 6);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..80 {
            let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(k[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-512.
pub fn sha512(data: &[u8]) -> [u8; 64] {
    let mut h = Sha512::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hex_encode;

    #[test]
    fn derived_constants_match_fips() {
        // Spot checks against the well-known first constants of FIPS
        // 180-4; the full arrays are pinned transitively by the test
        // vectors below.
        let c = sha256_consts();
        assert_eq!(c.h0[0], 0x6a09e667);
        assert_eq!(c.h0[7], 0x5be0cd19);
        assert_eq!(c.k[0], 0x428a2f98);
        assert_eq!(c.k[1], 0x71374491);
        assert_eq!(c.k[63], 0xc67178f2);
        let c = sha512_consts();
        assert_eq!(c.h0[0], 0x6a09e667f3bcc908);
        assert_eq!(c.k[0], 0x428a2f98d728ae22);
        assert_eq!(c.k[79], 0x6c44198c4a475817);
    }

    #[test]
    fn sha256_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk_size in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn sha256_padding_boundaries() {
        // Lengths around the 56-byte padding threshold and block size.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5Au8; len];
            let mut h = Sha256::new();
            h.update(&data);
            // Compare against splitting at every position.
            let mid = len / 2;
            let mut h2 = Sha256::new();
            h2.update(&data[..mid]);
            h2.update(&data[mid..]);
            assert_eq!(h.finalize(), h2.finalize(), "len {len}");
        }
    }

    #[test]
    fn sha512_empty() {
        assert_eq!(
            hex_encode(&sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_abc() {
        assert_eq!(
            hex_encode(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn sha512_streaming_equals_oneshot() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        for chunk_size in [1usize, 7, 127, 128, 129, 255] {
            let mut h = Sha512::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha512(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn sha512_padding_boundaries() {
        for len in [0usize, 111, 112, 113, 127, 128, 129, 239, 240, 256] {
            let data = vec![0xA5u8; len];
            let mid = len / 2;
            let mut h2 = Sha512::new();
            h2.update(&data[..mid]);
            h2.update(&data[mid..]);
            assert_eq!(sha512(&data), h2.finalize(), "len {len}");
        }
    }
}
