//! Merkle *range* proofs over the tree order.
//!
//! A point proof ([`crate::merkle::MerkleProof`]) shows what one key's
//! bucket held; it can never show that a server returned *every* key in
//! a window of the tree — an untrusted edge could silently omit rows
//! from a scan and each surviving row would still verify. Range proofs
//! close that gap (WedgeChain calls these completeness proofs): the
//! prover commits to the *entire contents* of a contiguous run of
//! leaves, plus the boundary siblings needed to fold that run back up
//! to the certified root. The verifier recomputes every leaf in the
//! window — including the empty ones — so omitting, truncating, or
//! splicing any bucket changes a leaf digest and breaks the root.
//!
//! Ranges are expressed in **tree order**: bucket indices of the
//! bucketed sparse Merkle tree, i.e. the key-*hash* order. That is the
//! only total order the ADS commits to, which is exactly why a
//! contiguous window of it is provable. (A scan over raw key bytes
//! would need a second, key-ordered ADS; see ARCHITECTURE.md.)

use std::ops::Bound;

use transedge_common::{Decode, Encode, Key, Result, TransEdgeError, WireReader, WireWriter};

use crate::digest::Digest;
use crate::merkle::{hash_leaf, hash_node, BucketEntry};
use crate::sha2::sha256;

/// Widest range (in buckets) a prover will produce or a verifier will
/// accept. Bounds both proof size and the verifier's hashing work; wide
/// scans paginate into consecutive windows instead.
pub const MAX_RANGE_BUCKETS: u64 = 1 << 12;

/// A contiguous, inclusive window `[first, last]` of Merkle-tree bucket
/// indices — the unit of a verified range scan.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ScanRange {
    pub first: u64,
    pub last: u64,
}

impl ScanRange {
    /// An inclusive bucket window. Panics if `first > last` (requests
    /// are built by trusted code; untrusted input goes through
    /// [`ScanRange::is_valid_for_depth`] instead).
    pub fn new(first: u64, last: u64) -> Self {
        assert!(first <= last, "empty scan range {first}..{last}");
        ScanRange { first, last }
    }

    /// Number of buckets covered.
    pub fn width(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Shape check against a tree depth: non-empty, inside the leaf
    /// space, and no wider than [`MAX_RANGE_BUCKETS`].
    pub fn is_valid_for_depth(&self, depth: u32) -> bool {
        self.first <= self.last
            && (depth >= 64 || self.last < (1u64 << depth))
            && self.width() <= MAX_RANGE_BUCKETS
    }

    /// Does this range cover every bucket of `other`? (A cached scan of
    /// a wider range can serve a narrower request.)
    pub fn covers(&self, other: &ScanRange) -> bool {
        self.first <= other.first && other.last <= self.last
    }

    pub fn contains_bucket(&self, bucket: u64) -> bool {
        (self.first..=self.last).contains(&bucket)
    }

    /// Tree-order bucket a key hash lands in at `depth`.
    pub fn bucket_of_hash(key_hash: &Digest, depth: u32) -> u64 {
        let prefix = u64::from_be_bytes(key_hash.0[..8].try_into().unwrap());
        prefix >> (64 - depth)
    }

    /// Tree-order bucket of a key at `depth`.
    pub fn bucket_of(key: &Key, depth: u32) -> u64 {
        Self::bucket_of_hash(&sha256(key.as_bytes()), depth)
    }

    pub fn contains_key(&self, key: &Key, depth: u32) -> bool {
        self.contains_bucket(Self::bucket_of(key, depth))
    }

    /// The key-hash interval this bucket window covers, as `BTreeMap`
    /// range bounds over full 32-byte digests — what an ordered store
    /// iterates to enumerate the window's rows.
    pub fn digest_bounds(&self, depth: u32) -> (Bound<Digest>, Bound<Digest>) {
        let mut start = [0u8; 32];
        start[..8].copy_from_slice(&(self.first << (64 - depth)).to_be_bytes());
        let end = if self.last + 1 == 1u64 << depth {
            Bound::Unbounded
        } else {
            let mut end = [0u8; 32];
            end[..8].copy_from_slice(&((self.last + 1) << (64 - depth)).to_be_bytes());
            Bound::Excluded(Digest(end))
        };
        (Bound::Included(Digest(start)), end)
    }
}

impl Encode for ScanRange {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.first);
        w.put_u64(self.last);
    }
}

impl Decode for ScanRange {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let first = r.get_u64()?;
        let last = r.get_u64()?;
        if first > last {
            return Err(TransEdgeError::Verification(format!(
                "decoded empty scan range {first}..{last}"
            )));
        }
        Ok(ScanRange { first, last })
    }
}

/// A completeness proof for a contiguous bucket window: the full
/// contents of every non-empty bucket in the window, plus the sibling
/// digests that extend the window to the root. Verification recomputes
/// *all* `width` leaves (absent buckets hash as empty), so the proof
/// pins the committed row set exactly — nothing in the window can be
/// hidden, added, or moved without breaking the root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeProof {
    /// `(bucket index, sorted entries)` for every non-empty bucket in
    /// the proven range, ascending by index.
    pub occupied: Vec<(u64, Vec<BucketEntry>)>,
    /// Left-boundary siblings, bottom-up: one digest for each level at
    /// which the window's left edge sat at an odd index.
    pub left: Vec<Digest>,
    /// Right-boundary siblings, bottom-up, for even right edges.
    pub right: Vec<Digest>,
}

impl RangeProof {
    /// Size in bytes when wire-encoded — used by the simulator's
    /// message-size-aware latency model.
    pub fn encoded_len(&self) -> usize {
        12 + self
            .occupied
            .iter()
            .map(|(_, entries)| 12 + entries.len() * 64)
            .sum::<usize>()
            + (self.left.len() + self.right.len()) * 32
    }
}

impl Encode for RangeProof {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.occupied.len() as u32);
        for (idx, entries) in &self.occupied {
            w.put_u64(*idx);
            w.put_seq(entries);
        }
        w.put_seq(&self.left);
        w.put_seq(&self.right);
    }
}

impl Decode for RangeProof {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let n = r.get_u32()? as usize;
        let mut occupied = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let idx = r.get_u64()?;
            occupied.push((idx, r.get_seq()?));
        }
        Ok(RangeProof {
            occupied,
            left: r.get_seq()?,
            right: r.get_seq()?,
        })
    }
}

fn invalid(msg: impl Into<String>) -> TransEdgeError {
    TransEdgeError::Verification(msg.into())
}

/// Verify a [`RangeProof`] for `range` against a trusted `root`,
/// returning the committed `(key-hash, value-hash)` entries of the
/// window in tree order. `depth` is the agreed tree depth (system
/// configuration, never attacker-controlled); `range` is what the
/// *verifier* wants proven — the prover is never trusted for position.
///
/// Success means the returned entry list is the **complete** committed
/// content of the window at the root's version: any omission,
/// truncation at a boundary, or splice from another version would have
/// changed a recomputed leaf or consumed the wrong siblings, and the
/// fold would miss the root.
pub fn verify_range_proof(
    root: &Digest,
    depth: u32,
    range: &ScanRange,
    proof: &RangeProof,
) -> Result<Vec<BucketEntry>> {
    if !range.is_valid_for_depth(depth) {
        return Err(invalid(format!(
            "scan range {}..={} invalid for depth {depth}",
            range.first, range.last
        )));
    }
    // Occupied buckets: strictly ascending, inside the range, non-empty,
    // strictly sorted entries, every entry hashed into its own bucket.
    let mut prev: Option<u64> = None;
    for (idx, entries) in &proof.occupied {
        if !range.contains_bucket(*idx) {
            return Err(invalid("occupied bucket outside proven range"));
        }
        if prev.is_some_and(|p| p >= *idx) {
            return Err(invalid("occupied buckets not strictly ascending"));
        }
        prev = Some(*idx);
        if entries.is_empty() {
            return Err(invalid("occupied bucket with no entries"));
        }
        for pair in entries.windows(2) {
            if pair[0].key_hash >= pair[1].key_hash {
                return Err(invalid("bucket entries not strictly sorted"));
            }
        }
        for e in entries {
            if ScanRange::bucket_of_hash(&e.key_hash, depth) != *idx {
                return Err(invalid("bucket entry outside its bucket"));
            }
        }
    }
    // Recompute every leaf of the window; absent buckets hash as empty.
    let empty_leaf = hash_leaf(&[]);
    let mut level: Vec<Digest> = vec![empty_leaf; range.width() as usize];
    for (idx, entries) in &proof.occupied {
        level[(idx - range.first) as usize] = hash_leaf(entries);
    }
    // Fold to the root, consuming boundary siblings exactly as parity
    // demands — no spare siblings may remain (they could smuggle state).
    let (mut lo, mut hi) = (range.first, range.last);
    let (mut li, mut ri) = (0usize, 0usize);
    for _ in 0..depth {
        if lo & 1 == 1 {
            let Some(s) = proof.left.get(li) else {
                return Err(invalid("missing left boundary sibling"));
            };
            level.insert(0, *s);
            li += 1;
            lo -= 1;
        }
        if hi & 1 == 0 {
            let Some(s) = proof.right.get(ri) else {
                return Err(invalid("missing right boundary sibling"));
            };
            level.push(*s);
            ri += 1;
            hi += 1;
        }
        level = level
            .chunks(2)
            .map(|pair| hash_node(&pair[0], &pair[1]))
            .collect();
        lo >>= 1;
        hi >>= 1;
    }
    if li != proof.left.len() || ri != proof.right.len() {
        return Err(invalid("unused boundary siblings"));
    }
    if level.len() != 1 || level[0] != *root {
        return Err(invalid("merkle range root mismatch"));
    }
    Ok(proof
        .occupied
        .iter()
        .flat_map(|(_, entries)| entries.iter().copied())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::value_digest;
    use crate::VersionedMerkleTree;
    use transedge_common::Value;

    const DEPTH: u32 = 8;

    fn k(i: u32) -> Key {
        Key::from_u32(i)
    }

    fn vh(s: &str) -> Digest {
        value_digest(&Value::from(s))
    }

    fn populated(n: u32) -> VersionedMerkleTree {
        let mut t = VersionedMerkleTree::with_depth(DEPTH);
        let updates: Vec<(Key, Digest)> = (0..n).map(|i| (k(i), vh(&i.to_string()))).collect();
        t.apply_batch(0, updates.iter().map(|(key, d)| (key, *d)));
        t
    }

    #[test]
    fn full_tree_range_verifies_and_is_complete() {
        let t = populated(64);
        let root = t.root_at(0);
        let range = ScanRange::new(0, (1 << DEPTH) - 1);
        let proof = t.prove_range(&range, 0);
        let entries = verify_range_proof(&root, DEPTH, &range, &proof).unwrap();
        assert_eq!(entries.len(), 64, "every committed key is in the window");
        // Entries come back in tree order.
        for pair in entries.windows(2) {
            assert!(pair[0].key_hash < pair[1].key_hash);
        }
        // Full-tree span consumes no boundary siblings.
        assert!(proof.left.is_empty() && proof.right.is_empty());
    }

    #[test]
    fn window_ranges_verify_at_every_alignment() {
        let t = populated(40);
        let root = t.root_at(0);
        for first in [0u64, 1, 7, 128, 250] {
            for width in [1u64, 2, 5, 6] {
                let last = (first + width - 1).min((1 << DEPTH) - 1);
                let range = ScanRange::new(first, last);
                let proof = t.prove_range(&range, 0);
                let entries = verify_range_proof(&root, DEPTH, &range, &proof).unwrap();
                for e in &entries {
                    assert!(range.contains_bucket(ScanRange::bucket_of_hash(&e.key_hash, DEPTH)));
                }
            }
        }
    }

    #[test]
    fn historical_range_proofs_pin_their_version() {
        let mut t = VersionedMerkleTree::with_depth(DEPTH);
        t.apply_batch(0, [(&k(1), vh("old"))]);
        t.apply_batch(1, [(&k(1), vh("new")), (&k(2), vh("x"))]);
        let range = ScanRange::new(0, (1 << DEPTH) - 1);
        for version in [0u64, 1] {
            let proof = t.prove_range(&range, version);
            let entries = verify_range_proof(&t.root_at(version), DEPTH, &range, &proof).unwrap();
            assert_eq!(entries.len(), if version == 0 { 1 } else { 2 });
        }
        // Cross-version splice: proof of version 0 against root 1 fails.
        let spliced = t.prove_range(&range, 0);
        assert!(verify_range_proof(&t.root_at(1), DEPTH, &range, &spliced).is_err());
    }

    #[test]
    fn omitting_a_bucket_or_entry_breaks_the_proof() {
        let t = populated(64);
        let root = t.root_at(0);
        let range = ScanRange::new(0, (1 << DEPTH) - 1);
        let honest = t.prove_range(&range, 0);
        assert!(honest.occupied.len() > 2);
        // Drop a whole bucket.
        let mut p = honest.clone();
        p.occupied.remove(p.occupied.len() / 2);
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
        // Drop one entry from a bucket (or empty the bucket entirely).
        let mut p = honest.clone();
        let (idx, entries) = &mut p.occupied[0];
        if entries.len() > 1 {
            entries.pop();
        } else {
            let idx = *idx;
            p.occupied.retain(|(i, _)| *i != idx);
        }
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
        // Tamper a value hash.
        let mut p = honest.clone();
        p.occupied[0].1[0].value_hash = vh("forged");
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
    }

    #[test]
    fn boundary_truncation_is_rejected() {
        let t = populated(64);
        let root = t.root_at(0);
        // A proof for a narrower window does not verify as the wider one
        // (the attack: prove [first+1, last] and claim the first bucket
        // was empty).
        let wide = ScanRange::new(4, 11);
        let narrow = ScanRange::new(5, 11);
        let narrow_proof = t.prove_range(&narrow, 0);
        assert!(verify_range_proof(&root, DEPTH, &wide, &narrow_proof).is_err());
        // And vice versa: the wide proof is not accepted for the narrow
        // request (its siblings no longer line up).
        let wide_proof = t.prove_range(&wide, 0);
        assert!(verify_range_proof(&root, DEPTH, &narrow, &wide_proof).is_err());
    }

    #[test]
    fn tampered_siblings_and_spares_are_rejected() {
        let t = populated(64);
        let root = t.root_at(0);
        let range = ScanRange::new(3, 6);
        let honest = t.prove_range(&range, 0);
        assert!(!honest.left.is_empty() && !honest.right.is_empty());
        let mut p = honest.clone();
        p.left[0].0[0] ^= 0xFF;
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
        let mut p = honest.clone();
        p.right.push(Digest([0xAB; 32]));
        assert!(
            verify_range_proof(&root, DEPTH, &range, &p).is_err(),
            "spare siblings must be rejected"
        );
        let mut p = honest;
        p.left.pop();
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
    }

    #[test]
    fn misplaced_and_unsorted_entries_are_rejected() {
        let t = populated(64);
        let root = t.root_at(0);
        let range = ScanRange::new(0, (1 << DEPTH) - 1);
        let honest = t.prove_range(&range, 0);
        // Move an entry into a neighbouring bucket (keeps the flattened
        // set identical — only position lies).
        let mut p = honest.clone();
        let moved = p.occupied[0].1.remove(0);
        if p.occupied[0].1.is_empty() {
            p.occupied.remove(0);
        }
        p.occupied[1].1.insert(0, moved);
        assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
        // Unsorted bucket (only exercised when a bucket collides).
        if honest.occupied.iter().any(|(_, e)| e.len() > 1) {
            let mut p = honest.clone();
            for (_, e) in p.occupied.iter_mut() {
                if e.len() > 1 {
                    e.reverse();
                    break;
                }
            }
            assert!(verify_range_proof(&root, DEPTH, &range, &p).is_err());
        }
    }

    #[test]
    fn range_validity_and_width_cap() {
        assert!(!ScanRange::new(0, MAX_RANGE_BUCKETS).is_valid_for_depth(20));
        assert!(ScanRange::new(0, MAX_RANGE_BUCKETS - 1).is_valid_for_depth(20));
        assert!(!ScanRange::new(200, 300).is_valid_for_depth(8));
        assert!(ScanRange::new(200, 255).is_valid_for_depth(8));
        let r = ScanRange::new(3, 9);
        assert_eq!(r.width(), 7);
        assert!(r.covers(&ScanRange::new(4, 9)));
        assert!(!r.covers(&ScanRange::new(2, 5)));
        assert!(!r.covers(&ScanRange::new(8, 10)));
    }

    #[test]
    fn digest_bounds_partition_the_key_space() {
        use std::ops::RangeBounds as _;
        let depth = 8;
        for i in 0..200u32 {
            let key = k(i);
            let hash = sha256(key.as_bytes());
            let bucket = ScanRange::bucket_of(&key, depth);
            let range = ScanRange::new(bucket, bucket);
            assert!(range.digest_bounds(depth).contains(&hash));
            if bucket > 0 {
                let below = ScanRange::new(0, bucket - 1);
                assert!(!below.digest_bounds(depth).contains(&hash));
            }
        }
        // The last bucket's upper bound is open-ended.
        let last = ScanRange::new((1 << depth) - 1, (1 << depth) - 1);
        assert!(matches!(last.digest_bounds(depth).1, Bound::Unbounded));
    }

    #[test]
    fn wire_roundtrip() {
        use transedge_common::wire::roundtrip;
        let t = populated(32);
        let range = ScanRange::new(2, 13);
        roundtrip(&range);
        roundtrip(&t.prove_range(&range, 0));
        // encoded_len is exact for the encoder above.
        let p = t.prove_range(&range, 0);
        assert_eq!(p.encoded_len(), p.encode_to_vec().len());
    }
}
