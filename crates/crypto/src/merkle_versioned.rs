//! A *versioned* bucketed sparse Merkle tree.
//!
//! TransEdge replicas need three things a plain Merkle tree cannot do:
//!
//! 1. **Historical proofs** — round two of the distributed read-only
//!    protocol (paper §4.3.4) serves values *as of an earlier batch*,
//!    with proofs against that batch's root;
//! 2. **Speculative application** — a replica validating a leader's
//!    proposed batch must check the proposed Merkle root *before*
//!    voting (a byzantine leader may lie about the root), then keep the
//!    application if the batch decides or roll it back on a view
//!    change;
//! 3. **Append-only versioning** — versions are batch numbers; the tree
//!    for batch `i` must remain reconstructible after batch `i+k` is
//!    applied.
//!
//! Implementation: every node and bucket keeps a small version list
//! `(version, payload)` ordered by version; lookups binary-search the
//! list. A journal records which buckets each version touched so
//! [`VersionedMerkleTree::rollback`] can undo the latest version in
//! O(touched paths).

use std::collections::HashMap;

use transedge_common::Key;

use crate::digest::Digest;
use crate::merkle::{hash_leaf, hash_node, BucketEntry, MerkleProof, MultiBucket, MultiProof};
use crate::range::{RangeProof, ScanRange};
use crate::sha2::sha256;

/// Version list: `(version, payload)` pairs, ascending by version.
type Versions<T> = Vec<(u64, T)>;

fn lookup_at<T>(versions: &Versions<T>, version: u64) -> Option<&T> {
    let idx = versions.partition_point(|(v, _)| *v <= version);
    versions[..idx].last().map(|(_, t)| t)
}

/// The versioned tree. Versions are the batch numbers of the SMR log.
#[derive(Clone)]
pub struct VersionedMerkleTree {
    depth: u32,
    /// bucket index → versioned entry lists.
    buckets: HashMap<u64, Versions<Vec<BucketEntry>>>,
    /// levels[l] : node index → versioned digests (level 0 = leaves).
    levels: Vec<HashMap<u64, Versions<Digest>>>,
    defaults: Vec<Digest>,
    /// version → bucket indices it touched (for rollback).
    journal: HashMap<u64, Vec<u64>>,
    latest: Option<u64>,
}

impl VersionedMerkleTree {
    pub fn with_depth(depth: u32) -> Self {
        assert!((1..=48).contains(&depth), "depth out of range");
        let mut defaults = Vec::with_capacity(depth as usize + 1);
        defaults.push(hash_leaf(&[]));
        for l in 0..depth as usize {
            let d = defaults[l];
            defaults.push(hash_node(&d, &d));
        }
        VersionedMerkleTree {
            depth,
            buckets: HashMap::new(),
            levels: vec![HashMap::new(); depth as usize + 1],
            defaults,
            journal: HashMap::new(),
            latest: None,
        }
    }

    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Latest applied version, if any.
    pub fn latest_version(&self) -> Option<u64> {
        self.latest
    }

    fn bucket_index(&self, key_hash: &Digest) -> u64 {
        let prefix = u64::from_be_bytes(key_hash.0[..8].try_into().unwrap());
        prefix >> (64 - self.depth)
    }

    fn node_at(&self, level: usize, index: u64, version: u64) -> Digest {
        self.levels[level]
            .get(&index)
            .and_then(|v| lookup_at(v, version))
            .copied()
            .unwrap_or(self.defaults[level])
    }

    /// Apply a batch of `(key, value_hash)` updates as `version`,
    /// returning the new root. Versions must be strictly increasing.
    pub fn apply_batch<'a>(
        &mut self,
        version: u64,
        updates: impl IntoIterator<Item = (&'a Key, Digest)>,
    ) -> Digest {
        assert!(
            self.latest.is_none_or(|l| version > l),
            "version {version} not after latest {:?}",
            self.latest
        );
        let mut dirty: Vec<u64> = Vec::new();
        for (key, value_hash) in updates {
            let key_hash = sha256(key.as_bytes());
            let idx = self.bucket_index(&key_hash);
            let versions = self.buckets.entry(idx).or_default();
            // Start the new bucket version from the latest contents.
            let needs_new = versions.last().is_none_or(|(v, _)| *v != version);
            if needs_new {
                let snapshot = versions.last().map(|(_, b)| b.clone()).unwrap_or_default();
                versions.push((version, snapshot));
                dirty.push(idx);
            }
            let bucket = &mut versions.last_mut().unwrap().1;
            match bucket.binary_search_by(|e| e.key_hash.cmp(&key_hash)) {
                Ok(pos) => bucket[pos].value_hash = value_hash,
                Err(pos) => bucket.insert(
                    pos,
                    BucketEntry {
                        key_hash,
                        value_hash,
                    },
                ),
            }
        }
        // Recompute dirty paths level by level.
        let mut frontier: Vec<u64> = Vec::with_capacity(dirty.len());
        for &idx in &dirty {
            let leaf = hash_leaf(lookup_at(&self.buckets[&idx], version).unwrap());
            push_version(self.levels[0].entry(idx).or_default(), version, leaf);
            frontier.push(idx >> 1);
        }
        frontier.sort_unstable();
        frontier.dedup();
        for level in 0..self.depth as usize {
            let mut next = Vec::with_capacity(frontier.len());
            for &parent in &frontier {
                let left = self.node_at(level, parent << 1, version);
                let right = self.node_at(level, (parent << 1) | 1, version);
                let digest = hash_node(&left, &right);
                push_version(
                    self.levels[level + 1].entry(parent).or_default(),
                    version,
                    digest,
                );
                next.push(parent >> 1);
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        // Even an empty batch records a root version so `root_at` works.
        if dirty.is_empty() {
            let prev_root = self
                .latest
                .map(|l| self.root_at(l))
                .unwrap_or(self.defaults[self.depth as usize]);
            push_version(
                self.levels[self.depth as usize].entry(0).or_default(),
                version,
                prev_root,
            );
        }
        self.journal.insert(version, dirty);
        self.latest = Some(version);
        self.root_at(version)
    }

    /// Undo the *latest* version (speculative batch rejected / view
    /// change discarded the proposal).
    pub fn rollback(&mut self, version: u64) {
        assert_eq!(
            self.latest,
            Some(version),
            "can only roll back the latest version"
        );
        let dirty = self.journal.remove(&version).unwrap_or_default();
        let mut frontier: Vec<u64> = Vec::with_capacity(dirty.len());
        for idx in dirty {
            if let Some(versions) = self.buckets.get_mut(&idx) {
                pop_version(versions, version);
                if versions.is_empty() {
                    self.buckets.remove(&idx);
                }
            }
            if let Some(v) = self.levels[0].get_mut(&idx) {
                pop_version_d(v, version);
            }
            frontier.push(idx >> 1);
        }
        frontier.sort_unstable();
        frontier.dedup();
        for level in 1..=self.depth as usize {
            let mut next = Vec::with_capacity(frontier.len());
            for &parent in &frontier {
                if let Some(v) = self.levels[level].get_mut(&parent) {
                    pop_version_d(v, version);
                }
                next.push(parent >> 1);
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        // Root version recorded by an empty batch.
        if let Some(v) = self.levels[self.depth as usize].get_mut(&0) {
            pop_version_d(v, version);
        }
        // Recompute `latest` from the root node's version list.
        self.latest = self.levels[self.depth as usize]
            .get(&0)
            .and_then(|v| v.last().map(|(ver, _)| *ver));
    }

    /// Root as of `version` (the default root before any version).
    pub fn root_at(&self, version: u64) -> Digest {
        self.node_at(self.depth as usize, 0, version)
    }

    /// (Non-)inclusion proof for `key` against the root at `version`.
    pub fn prove_at(&self, key: &Key, version: u64) -> MerkleProof {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let bucket = self
            .buckets
            .get(&idx)
            .and_then(|v| lookup_at(v, version))
            .cloned()
            .unwrap_or_default();
        let mut siblings = Vec::with_capacity(self.depth as usize);
        let mut index = idx;
        for level in 0..self.depth as usize {
            siblings.push(self.node_at(level, index ^ 1, version));
            index >>= 1;
        }
        MerkleProof { bucket, siblings }
    }

    /// Batched (non-)inclusion proof for a *set* of keys against the
    /// root at `version`: one [`MultiProof`] with each distinct bucket
    /// once and a deduplicated sibling set. The walk mirrors
    /// [`crate::merkle::verify_multi_proof`]: frontier nodes that are
    /// each other's sibling pair up instead of shipping both digests,
    /// so overlapping upper paths are carried once instead of once per
    /// key.
    pub fn prove_multi(&self, keys: &[Key], version: u64) -> MultiProof {
        let mut indices: Vec<u64> = keys
            .iter()
            .map(|k| self.bucket_index(&sha256(k.as_bytes())))
            .collect();
        indices.sort_unstable();
        indices.dedup();
        let buckets = indices
            .iter()
            .map(|&idx| MultiBucket {
                index: idx,
                entries: self
                    .buckets
                    .get(&idx)
                    .and_then(|v| lookup_at(v, version))
                    .cloned()
                    .unwrap_or_default(),
            })
            .collect();
        let mut siblings = Vec::new();
        let mut frontier = indices;
        for level in 0..self.depth as usize {
            let mut next = Vec::with_capacity(frontier.len());
            let mut i = 0;
            while i < frontier.len() {
                let idx = frontier[i];
                if idx & 1 == 0 && frontier.get(i + 1) == Some(&(idx + 1)) {
                    i += 2;
                } else {
                    siblings.push(self.node_at(level, idx ^ 1, version));
                    i += 1;
                }
                next.push(idx >> 1);
            }
            frontier = next;
        }
        MultiProof { buckets, siblings }
    }

    /// Completeness proof for a contiguous bucket window against the
    /// root at `version`: every non-empty bucket in the window plus the
    /// boundary siblings that fold the window back to the root. The
    /// counterpart of [`crate::range::verify_range_proof`] — see
    /// [`crate::range`] for why point proofs cannot show completeness.
    pub fn prove_range(&self, range: &ScanRange, version: u64) -> RangeProof {
        assert!(
            range.is_valid_for_depth(self.depth),
            "scan range {}..={} invalid for depth {}",
            range.first,
            range.last,
            self.depth
        );
        let mut occupied = Vec::new();
        for idx in range.first..=range.last {
            if let Some(bucket) = self.buckets.get(&idx).and_then(|v| lookup_at(v, version)) {
                if !bucket.is_empty() {
                    occupied.push((idx, bucket.clone()));
                }
            }
        }
        let (mut lo, mut hi) = (range.first, range.last);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for level in 0..self.depth as usize {
            if lo & 1 == 1 {
                left.push(self.node_at(level, lo - 1, version));
                lo -= 1;
            }
            if hi & 1 == 0 {
                right.push(self.node_at(level, hi + 1, version));
                hi += 1;
            }
            lo >>= 1;
            hi >>= 1;
        }
        RangeProof {
            occupied,
            left,
            right,
        }
    }

    /// Committed value hash for `key` as of `version`.
    pub fn get_at(&self, key: &Key, version: u64) -> Option<Digest> {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let bucket = self.buckets.get(&idx).and_then(|v| lookup_at(v, version))?;
        let pos = bucket
            .binary_search_by(|e| e.key_hash.cmp(&key_hash))
            .ok()?;
        Some(bucket[pos].value_hash)
    }
}

fn push_version<T>(versions: &mut Versions<T>, version: u64, value: T) {
    if let Some((last_v, last)) = versions.last_mut() {
        if *last_v == version {
            *last = value;
            return;
        }
        debug_assert!(*last_v < version);
    }
    versions.push((version, value));
}

fn pop_version<T>(versions: &mut Versions<T>, version: u64) {
    if versions.last().is_some_and(|(v, _)| *v == version) {
        versions.pop();
    }
}

fn pop_version_d(versions: &mut Versions<Digest>, version: u64) {
    pop_version(versions, version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::{value_digest, verify_proof, MerkleTree, Verified};
    use transedge_common::Value;

    fn k(i: u32) -> Key {
        Key::from_u32(i)
    }

    fn vh(s: &str) -> Digest {
        value_digest(&Value::from(s))
    }

    #[test]
    fn matches_plain_tree_roots() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        let mut pt = MerkleTree::with_depth(8);
        for batch in 0..5u64 {
            let updates: Vec<(Key, Digest)> = (0..20)
                .map(|i| (k(batch as u32 * 20 + i), vh(&format!("{batch}-{i}"))))
                .collect();
            let root = vt.apply_batch(batch, updates.iter().map(|(k, d)| (k, *d)));
            pt.batch_update(updates.iter().map(|(k, d)| (k, *d)));
            assert_eq!(root, pt.root(), "batch {batch}");
            assert_eq!(vt.root_at(batch), pt.root());
        }
    }

    #[test]
    fn historical_roots_are_stable() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        let r0 = vt.apply_batch(0, [(&k(1), vh("a"))]);
        let r1 = vt.apply_batch(1, [(&k(1), vh("b")), (&k(2), vh("c"))]);
        let r2 = vt.apply_batch(2, [(&k(3), vh("d"))]);
        assert_eq!(vt.root_at(0), r0);
        assert_eq!(vt.root_at(1), r1);
        assert_eq!(vt.root_at(2), r2);
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn historical_proofs_verify_against_their_root() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(0, [(&k(1), vh("old"))]);
        vt.apply_batch(1, [(&k(1), vh("new"))]);
        let r0 = vt.root_at(0);
        let r1 = vt.root_at(1);
        // Proof at version 0 shows the old value.
        let p0 = vt.prove_at(&k(1), 0);
        assert_eq!(
            verify_proof(&r0, 8, &k(1), &p0).unwrap(),
            Verified::Present(vh("old"))
        );
        // Proof at version 1 shows the new value.
        let p1 = vt.prove_at(&k(1), 1);
        assert_eq!(
            verify_proof(&r1, 8, &k(1), &p1).unwrap(),
            Verified::Present(vh("new"))
        );
        // Cross-version verification fails.
        assert!(verify_proof(&r1, 8, &k(1), &p0).is_err());
    }

    #[test]
    fn absent_key_has_non_inclusion_proof_at_every_version() {
        let mut vt = VersionedMerkleTree::with_depth(6);
        vt.apply_batch(0, [(&k(1), vh("a"))]);
        vt.apply_batch(3, [(&k(2), vh("b"))]);
        for version in [0u64, 3] {
            let p = vt.prove_at(&k(999), version);
            assert_eq!(
                verify_proof(&vt.root_at(version), 6, &k(999), &p).unwrap(),
                Verified::Absent
            );
        }
    }

    #[test]
    fn rollback_restores_previous_state() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(0, [(&k(1), vh("a"))]);
        let r0 = vt.root_at(0);
        vt.apply_batch(1, [(&k(1), vh("b")), (&k(7), vh("x"))]);
        assert_ne!(vt.root_at(1), r0);
        vt.rollback(1);
        assert_eq!(vt.latest_version(), Some(0));
        assert_eq!(vt.root_at(0), r0);
        assert_eq!(vt.get_at(&k(1), 10), Some(vh("a"))); // version 1 gone
        assert_eq!(vt.get_at(&k(7), 10), None);
        // Re-applying version 1 with different content works.
        let r1b = vt.apply_batch(1, [(&k(1), vh("c"))]);
        assert_eq!(vt.root_at(1), r1b);
    }

    #[test]
    fn empty_batch_pins_root_version() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(0, [(&k(1), vh("a"))]);
        let r0 = vt.root_at(0);
        let r1 = vt.apply_batch(1, std::iter::empty::<(&Key, Digest)>());
        assert_eq!(r0, r1);
        assert_eq!(vt.latest_version(), Some(1));
        vt.rollback(1);
        assert_eq!(vt.latest_version(), Some(0));
    }

    #[test]
    fn versions_before_first_use_default_root() {
        let vt = VersionedMerkleTree::with_depth(8);
        let plain = MerkleTree::with_depth(8);
        assert_eq!(vt.root_at(0), plain.root());
    }

    #[test]
    #[should_panic(expected = "not after latest")]
    fn non_monotonic_version_panics() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(5, [(&k(1), vh("a"))]);
        vt.apply_batch(5, [(&k(2), vh("b"))]);
    }

    #[test]
    fn multi_proof_matches_per_key_proofs() {
        use crate::merkle::verify_multi_proof;
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(
            0,
            (0..40)
                .map(|i| (k(i), vh(&format!("v{i}"))))
                .collect::<Vec<_>>()
                .iter()
                .map(|(k, d)| (k, *d)),
        );
        let root = vt.root_at(0);
        // A mix of present keys (some colliding buckets at depth 8)
        // and an absent one.
        let keys: Vec<Key> = [1u32, 7, 13, 22, 39, 999].iter().map(|i| k(*i)).collect();
        let multi = vt.prove_multi(&keys, 0);
        let got = verify_multi_proof(&root, 8, &keys, &multi).unwrap();
        for (key, verdict) in keys.iter().zip(&got) {
            let single = verify_proof(&root, 8, key, &vt.prove_at(key, 0)).unwrap();
            assert_eq!(*verdict, single, "key {key:?}");
        }
        assert_eq!(got[5], Verified::Absent);
    }

    #[test]
    fn multi_proof_is_smaller_than_independent_proofs() {
        // The acceptance bar: at N >= 4 keys the deduplicated sibling
        // set must be strictly smaller on the wire than N per-key
        // proofs, at the deployment's real depth.
        let mut vt = VersionedMerkleTree::with_depth(16);
        let all: Vec<Key> = (0..64).map(k).collect();
        vt.apply_batch(0, all.iter().map(|key| (key, vh("v"))));
        for n in [4usize, 8, 16, 32] {
            let keys = &all[..n];
            let multi = vt.prove_multi(keys, 0);
            let independent: usize = keys
                .iter()
                .map(|key| vt.prove_at(key, 0).encoded_len())
                .sum();
            assert!(
                multi.encoded_len() < independent,
                "n={n}: multi {} >= independent {independent}",
                multi.encoded_len()
            );
        }
    }

    #[test]
    fn multi_proof_rejects_tampering() {
        use crate::merkle::verify_multi_proof;
        let mut vt = VersionedMerkleTree::with_depth(8);
        let all: Vec<Key> = (0..30).map(k).collect();
        vt.apply_batch(0, all.iter().map(|key| (key, vh("a"))));
        vt.apply_batch(1, [(&k(3), vh("b"))]);
        let root = vt.root_at(1);
        let keys: Vec<Key> = [2u32, 3, 11, 17].iter().map(|i| k(*i)).collect();
        let good = vt.prove_multi(&keys, 1);
        assert_eq!(
            good.buckets.len(),
            4,
            "keys chosen to occupy distinct buckets"
        );
        assert!(verify_multi_proof(&root, 8, &keys, &good).is_ok());
        // Dropping any sibling breaks it.
        for i in 0..good.siblings.len() {
            let mut p = good.clone();
            p.siblings.remove(i);
            assert!(verify_multi_proof(&root, 8, &keys, &p).is_err(), "sib {i}");
        }
        // Substituting any sibling breaks it.
        for i in 0..good.siblings.len() {
            let mut p = good.clone();
            p.siblings[i] = Digest([0xAB; 32]);
            assert!(verify_multi_proof(&root, 8, &keys, &p).is_err(), "sib {i}");
        }
        // Dropping any bucket entry (omitting a key) breaks it.
        for b in 0..good.buckets.len() {
            for e in 0..good.buckets[b].entries.len() {
                let mut p = good.clone();
                p.buckets[b].entries.remove(e);
                assert!(verify_multi_proof(&root, 8, &keys, &p).is_err());
            }
        }
        // Dropping a whole bucket breaks it.
        for b in 0..good.buckets.len() {
            let mut p = good.clone();
            p.buckets.remove(b);
            assert!(verify_multi_proof(&root, 8, &keys, &p).is_err());
        }
        // Splicing in a stale value (cross-batch) breaks it: the proof
        // at version 0 shows the old value but cannot fold to root 1.
        let stale = vt.prove_multi(&keys, 0);
        assert!(verify_multi_proof(&root, 8, &keys, &stale).is_err());
        // A superset proof serves a subset of its own keys only via the
        // full key set; verifying against a *different* key set fails.
        let other: Vec<Key> = [2u32, 3, 11].iter().map(|i| k(*i)).collect();
        assert!(verify_multi_proof(&root, 8, &other, &good).is_err());
    }

    #[test]
    fn get_at_reflects_version_history() {
        let mut vt = VersionedMerkleTree::with_depth(8);
        vt.apply_batch(2, [(&k(1), vh("v2"))]);
        vt.apply_batch(5, [(&k(1), vh("v5"))]);
        assert_eq!(vt.get_at(&k(1), 1), None);
        assert_eq!(vt.get_at(&k(1), 2), Some(vh("v2")));
        assert_eq!(vt.get_at(&k(1), 4), Some(vh("v2")));
        assert_eq!(vt.get_at(&k(1), 5), Some(vh("v5")));
    }
}
