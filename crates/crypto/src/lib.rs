//! # transedge-crypto
//!
//! Cryptographic substrate for TransEdge, implemented from scratch
//! because no cryptography crates are available in this offline build
//! environment:
//!
//! * [`sha2`] — SHA-256 and SHA-512 (FIPS 180-4). Round constants are
//!   *derived* (fractional parts of cube/square roots of primes, found
//!   by exact integer binary search) rather than transcribed, and the
//!   implementations are pinned by the standard test vectors.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`ed25519`] — Ed25519 signatures (RFC 8032): field arithmetic mod
//!   2²⁵⁵−19, scalar arithmetic mod the group order, twisted Edwards
//!   point operations in extended coordinates.
//! * [`merkle`] — the bucketed sparse Merkle tree TransEdge uses as its
//!   Authenticated Data Structure (ADS), with inclusion and
//!   non-inclusion proofs.
//! * [`range`] — contiguous-leaf *completeness* proofs over the tree
//!   order, so a verified scan can detect an untrusted server omitting
//!   rows from a window.
//! * [`keys`] — key material and the per-deployment key registry.
//!
//! ## Security disclaimer
//!
//! This code is written for a *protocol reproduction running inside a
//! simulator*. It is functionally correct (pinned by test vectors and
//! algebraic property tests) but makes no constant-time claims and has
//! had no side-channel review. Do not use it to protect real data.

pub mod digest;
pub mod ed25519;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod merkle_versioned;
pub mod range;
pub mod sha2;

pub use digest::Digest;
pub use ed25519::{Keypair, PublicKey, Signature};
pub use keys::KeyStore;
pub use merkle::{verify_multi_proof, MerkleProof, MerkleTree, MultiBucket, MultiProof};
pub use merkle_versioned::VersionedMerkleTree;
pub use range::{verify_range_proof, RangeProof, ScanRange};
pub use sha2::{sha256, sha512, Sha256, Sha512};

/// Domain-separated hash of a wire-encodable structure.
///
/// All protocol digests go through this function so that a message of
/// one type can never be confused with a message of another type that
/// happens to share a byte representation.
pub fn hash_encoded<T: transedge_common::Encode>(domain: &str, value: &T) -> Digest {
    let mut h = Sha256::new();
    h.update(&(domain.len() as u32).to_le_bytes());
    h.update(domain.as_bytes());
    h.update(&value.encode_to_vec());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_separation_changes_digest() {
        let a = hash_encoded("batch", &7u64);
        let b = hash_encoded("txn", &7u64);
        assert_ne!(a, b);
        assert_eq!(a, hash_encoded("batch", &7u64));
    }
}
