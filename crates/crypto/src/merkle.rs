//! The bucketed sparse Merkle tree TransEdge uses as its Authenticated
//! Data Structure (ADS).
//!
//! The paper (§4.1) keeps one Merkle tree per partition; every batch
//! commit updates the tree with the batch's write-sets and the new root
//! is certified by `f+1` replica signatures. A client reading from a
//! *single* untrusted node verifies returned values against that root.
//!
//! Shape: a complete binary tree of configurable `depth`. A key hashes
//! (SHA-256) to one of `2^depth` *buckets*; a bucket's leaf digest
//! commits to the sorted list of `(key-hash, value-hash)` entries it
//! holds, so hash-prefix collisions are handled exactly rather than
//! probabilistically. Empty subtrees use precomputed default digests,
//! so the tree is sparse: memory is proportional to occupied buckets,
//! and updates touch `O(depth)` nodes.
//!
//! Proofs carry the full bucket contents plus the `depth` sibling
//! digests. The verifier recomputes the bucket index from the key
//! itself (it never trusts the prover for position), rebuilds the leaf
//! digest, folds up to the root, and compares. The same proof form
//! shows *non-inclusion*: a bucket list without the key's hash proves
//! absence.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet};

use transedge_common::{
    Decode, Encode, Key, Result, TransEdgeError, Value, WireReader, WireWriter,
};

use crate::digest::Digest;
use crate::sha2::{sha256, Sha256};

/// Domain-separation prefixes for the three hash shapes in the tree.
const TAG_LEAF: u8 = 0x00;
const TAG_NODE: u8 = 0x01;
const TAG_VALUE: u8 = 0x02;

/// Hash of a stored value, as committed in leaf entries.
pub fn value_digest(value: &Value) -> Digest {
    let mut h = Sha256::new();
    h.update(&[TAG_VALUE]);
    h.update(value.as_bytes());
    h.finalize()
}

/// One committed entry in a bucket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BucketEntry {
    /// SHA-256 of the key (full 32 bytes — collisions in the bucket
    /// prefix are disambiguated here).
    pub key_hash: Digest,
    /// [`value_digest`] of the current value.
    pub value_hash: Digest,
}

impl Encode for BucketEntry {
    fn encode(&self, w: &mut WireWriter) {
        self.key_hash.encode(w);
        self.value_hash.encode(w);
    }
}

impl Decode for BucketEntry {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(BucketEntry {
            key_hash: Digest::decode(r)?,
            value_hash: Digest::decode(r)?,
        })
    }
}

/// An inclusion or non-inclusion proof for one key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleProof {
    /// Entire contents of the key's bucket (sorted by key hash).
    pub bucket: Vec<BucketEntry>,
    /// Sibling digests from the leaf level up to just below the root.
    pub siblings: Vec<Digest>,
}

impl MerkleProof {
    /// Size in bytes when wire-encoded — used by the simulator's
    /// message-size-aware latency model.
    pub fn encoded_len(&self) -> usize {
        8 + self.bucket.len() * 64 + self.siblings.len() * 32
    }
}

impl Encode for MerkleProof {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(&self.bucket);
        w.put_seq(&self.siblings);
    }
}

impl Decode for MerkleProof {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(MerkleProof {
            bucket: r.get_seq()?,
            siblings: r.get_seq()?,
        })
    }
}

/// One distinct bucket carried by a [`MultiProof`].
///
/// The index is carried for the prover's frontier layout but is never
/// trusted alone: the verifier recomputes the needed bucket set from
/// the keys themselves and requires an exact match.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MultiBucket {
    /// Bucket index in the leaf space.
    pub index: u64,
    /// Entire contents of the bucket (sorted by key hash).
    pub entries: Vec<BucketEntry>,
}

impl Encode for MultiBucket {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.index);
        w.put_seq(&self.entries);
    }
}

impl Decode for MultiBucket {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(MultiBucket {
            index: r.get_u64()?,
            entries: r.get_seq()?,
        })
    }
}

/// A batched (non-)inclusion proof for a *set* of keys against one
/// root: every distinct bucket the keys hash into, plus one
/// deduplicated sibling set. Where N per-key [`MerkleProof`]s repeat
/// the shared upper-path digests N times, a multiproof carries each
/// digest once — the paths fold jointly, pairing frontier nodes that
/// are siblings of each other instead of shipping both.
///
/// Sibling order is deterministic: bottom-up by level, left-to-right
/// within a level, one digest per frontier node whose sibling is not
/// itself on the frontier. Prover and verifier replay the same walk,
/// so any dropped, spliced, or reordered sibling lands in the wrong
/// fold position and breaks the recomputed root.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MultiProof {
    /// Distinct buckets covering the proven keys, ascending by index.
    pub buckets: Vec<MultiBucket>,
    /// Shared sibling digests in fold order.
    pub siblings: Vec<Digest>,
}

impl MultiProof {
    /// Size in bytes when wire-encoded — used by the simulator's
    /// message-size-aware latency model.
    pub fn encoded_len(&self) -> usize {
        8 + self
            .buckets
            .iter()
            .map(|b| 12 + b.entries.len() * 64)
            .sum::<usize>()
            + self.siblings.len() * 32
    }
}

impl Encode for MultiProof {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(&self.buckets);
        w.put_seq(&self.siblings);
    }
}

impl Decode for MultiProof {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(MultiProof {
            buckets: r.get_seq()?,
            siblings: r.get_seq()?,
        })
    }
}

/// The tree itself (the prover side, held by replicas).
#[derive(Clone)]
pub struct MerkleTree {
    depth: u32,
    /// bucket index → sorted entries. Absent buckets are empty.
    buckets: HashMap<u64, Vec<BucketEntry>>,
    /// levels[l] maps node-index → digest for non-default nodes;
    /// l = 0 is the leaf level, l = depth is the root level.
    levels: Vec<HashMap<u64, Digest>>,
    /// defaults[l] = digest of an empty subtree whose leaves sit l
    /// levels down.
    defaults: Vec<Digest>,
    len: usize,
}

impl MerkleTree {
    /// Default depth: 2^20 buckets — matches the paper's 1M-key
    /// workload at about one key per bucket.
    pub const DEFAULT_DEPTH: u32 = 20;

    pub fn new() -> Self {
        Self::with_depth(Self::DEFAULT_DEPTH)
    }

    /// A tree with `2^depth` buckets. `depth` must be in `1..=48`.
    pub fn with_depth(depth: u32) -> Self {
        assert!((1..=48).contains(&depth), "depth out of range");
        let mut defaults = Vec::with_capacity(depth as usize + 1);
        defaults.push(hash_leaf(&[]));
        for l in 0..depth as usize {
            let d = defaults[l];
            defaults.push(hash_node(&d, &d));
        }
        MerkleTree {
            depth,
            buckets: HashMap::new(),
            levels: vec![HashMap::new(); depth as usize + 1],
            defaults,
            len: 0,
        }
    }

    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current root digest.
    pub fn root(&self) -> Digest {
        self.node_digest(self.depth as usize, 0)
    }

    fn node_digest(&self, level: usize, index: u64) -> Digest {
        self.levels[level]
            .get(&index)
            .copied()
            .unwrap_or(self.defaults[level])
    }

    fn bucket_index(&self, key_hash: &Digest) -> u64 {
        let prefix = u64::from_be_bytes(key_hash.0[..8].try_into().unwrap());
        prefix >> (64 - self.depth)
    }

    /// Insert or update a key. Returns the previous value hash if the
    /// key was present.
    pub fn insert(&mut self, key: &Key, value_hash: Digest) -> Option<Digest> {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let bucket = self.buckets.entry(idx).or_default();
        let prev = match bucket.binary_search_by(|e| e.key_hash.cmp(&key_hash)) {
            Ok(pos) => {
                let old = bucket[pos].value_hash;
                bucket[pos].value_hash = value_hash;
                Some(old)
            }
            Err(pos) => {
                bucket.insert(
                    pos,
                    BucketEntry {
                        key_hash,
                        value_hash,
                    },
                );
                self.len += 1;
                None
            }
        };
        let leaf = hash_leaf(bucket);
        self.set_leaf_and_bubble(idx, leaf);
        prev
    }

    /// Remove a key. Returns its value hash if it was present.
    pub fn remove(&mut self, key: &Key) -> Option<Digest> {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let MapEntry::Occupied(mut occ) = self.buckets.entry(idx) else {
            return None;
        };
        let bucket = occ.get_mut();
        let pos = bucket
            .binary_search_by(|e| e.key_hash.cmp(&key_hash))
            .ok()?;
        let old = bucket.remove(pos).value_hash;
        self.len -= 1;
        let leaf = if bucket.is_empty() {
            occ.remove();
            self.defaults[0]
        } else {
            hash_leaf(occ.get())
        };
        self.set_leaf_and_bubble(idx, leaf);
        Some(old)
    }

    fn set_leaf_and_bubble(&mut self, idx: u64, leaf: Digest) {
        self.set_node(0, idx, leaf);
        let mut index = idx;
        for level in 0..self.depth as usize {
            let parent = index >> 1;
            let left = self.node_digest(level, parent << 1);
            let right = self.node_digest(level, (parent << 1) | 1);
            self.set_node(level + 1, parent, hash_node(&left, &right));
            index = parent;
        }
    }

    fn set_node(&mut self, level: usize, index: u64, digest: Digest) {
        if digest == self.defaults[level] {
            self.levels[level].remove(&index);
        } else {
            self.levels[level].insert(index, digest);
        }
    }

    /// Apply many updates, recomputing each affected interior node once.
    /// Orders of magnitude faster than repeated [`MerkleTree::insert`] for the
    /// batch sizes in the paper's evaluation (900–3500 writes).
    pub fn batch_update<'a>(&mut self, updates: impl IntoIterator<Item = (&'a Key, Digest)>) {
        let mut dirty: HashSet<u64> = HashSet::new();
        for (key, value_hash) in updates {
            let key_hash = sha256(key.as_bytes());
            let idx = self.bucket_index(&key_hash);
            let bucket = self.buckets.entry(idx).or_default();
            match bucket.binary_search_by(|e| e.key_hash.cmp(&key_hash)) {
                Ok(pos) => bucket[pos].value_hash = value_hash,
                Err(pos) => {
                    bucket.insert(
                        pos,
                        BucketEntry {
                            key_hash,
                            value_hash,
                        },
                    );
                    self.len += 1;
                }
            }
            dirty.insert(idx);
        }
        // Recompute dirty leaves, then propagate level by level.
        for &idx in &dirty {
            let leaf = hash_leaf(&self.buckets[&idx]);
            self.set_node(0, idx, leaf);
        }
        let mut frontier: HashSet<u64> = dirty.iter().map(|i| i >> 1).collect();
        for level in 0..self.depth as usize {
            let mut next = HashSet::with_capacity(frontier.len() / 2 + 1);
            for &parent in &frontier {
                let left = self.node_digest(level, parent << 1);
                let right = self.node_digest(level, (parent << 1) | 1);
                self.set_node(level + 1, parent, hash_node(&left, &right));
                next.insert(parent >> 1);
            }
            frontier = next;
        }
    }

    /// Produce an (non-)inclusion proof for `key` against the current
    /// root.
    pub fn prove(&self, key: &Key) -> MerkleProof {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let bucket = self.buckets.get(&idx).cloned().unwrap_or_default();
        let mut siblings = Vec::with_capacity(self.depth as usize);
        let mut index = idx;
        for level in 0..self.depth as usize {
            siblings.push(self.node_digest(level, index ^ 1));
            index >>= 1;
        }
        MerkleProof { bucket, siblings }
    }

    /// Look up the committed value hash for a key (prover-side; clients
    /// use [`verify_proof`]).
    pub fn get(&self, key: &Key) -> Option<Digest> {
        let key_hash = sha256(key.as_bytes());
        let idx = self.bucket_index(&key_hash);
        let bucket = self.buckets.get(&idx)?;
        let pos = bucket
            .binary_search_by(|e| e.key_hash.cmp(&key_hash))
            .ok()?;
        Some(bucket[pos].value_hash)
    }
}

impl Default for MerkleTree {
    fn default() -> Self {
        Self::new()
    }
}

/// What a verified proof says about the key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verified {
    /// Key present with this value hash.
    Present(Digest),
    /// Key provably absent.
    Absent,
}

/// Client-side verification of a [`MerkleProof`] against a trusted
/// `root`. `depth` must be the agreed tree depth (part of the system
/// configuration, not attacker-controlled).
pub fn verify_proof(root: &Digest, depth: u32, key: &Key, proof: &MerkleProof) -> Result<Verified> {
    if proof.siblings.len() != depth as usize {
        return Err(TransEdgeError::Verification(format!(
            "proof has {} siblings, want {depth}",
            proof.siblings.len()
        )));
    }
    // Buckets must be strictly sorted — otherwise a malicious prover
    // could hide an entry from the binary search.
    for pair in proof.bucket.windows(2) {
        if pair[0].key_hash >= pair[1].key_hash {
            return Err(TransEdgeError::Verification(
                "proof bucket not strictly sorted".into(),
            ));
        }
    }
    let key_hash = sha256(key.as_bytes());
    // Recompute the bucket index from the key; never trust the prover.
    let prefix = u64::from_be_bytes(key_hash.0[..8].try_into().unwrap());
    let idx = prefix >> (64 - depth);
    // Every entry in the bucket must actually belong to this bucket.
    for e in &proof.bucket {
        let p = u64::from_be_bytes(e.key_hash.0[..8].try_into().unwrap());
        if p >> (64 - depth) != idx {
            return Err(TransEdgeError::Verification(
                "bucket entry outside its bucket".into(),
            ));
        }
    }
    let mut digest = hash_leaf(&proof.bucket);
    let mut index = idx;
    for sibling in &proof.siblings {
        digest = if index & 1 == 0 {
            hash_node(&digest, sibling)
        } else {
            hash_node(sibling, &digest)
        };
        index >>= 1;
    }
    if digest != *root {
        return Err(TransEdgeError::Verification("merkle root mismatch".into()));
    }
    let found = proof
        .bucket
        .binary_search_by(|e| e.key_hash.cmp(&key_hash))
        .ok()
        .map(|pos| proof.bucket[pos].value_hash);
    Ok(match found {
        Some(vh) => Verified::Present(vh),
        None => Verified::Absent,
    })
}

/// Client-side verification of a [`MultiProof`] against a trusted
/// `root`: one joint fold recomputes the root once for the whole key
/// set. Returns one [`Verified`] per key, in the order given.
///
/// The needed bucket set is recomputed from the keys — the prover's
/// carried indices are checked against it, never trusted. The proof
/// may cover *more* keys than asked (a cached superset replay): the
/// caller passes the full proven key set here and filters afterwards.
pub fn verify_multi_proof(
    root: &Digest,
    depth: u32,
    keys: &[Key],
    proof: &MultiProof,
) -> Result<Vec<Verified>> {
    if keys.is_empty() {
        return Err(TransEdgeError::Verification(
            "multiproof over an empty key set".into(),
        ));
    }
    // Recompute every key's bucket index from the key itself.
    let key_hashes: Vec<Digest> = keys.iter().map(|k| sha256(k.as_bytes())).collect();
    let key_buckets: Vec<u64> = key_hashes
        .iter()
        .map(|h| {
            let prefix = u64::from_be_bytes(h.0[..8].try_into().unwrap());
            prefix >> (64 - depth)
        })
        .collect();
    let mut needed = key_buckets.clone();
    needed.sort_unstable();
    needed.dedup();
    // The carried bucket set must equal the recomputed one exactly —
    // no bucket missing (omission) and none smuggled in (splice).
    if proof.buckets.len() != needed.len()
        || proof
            .buckets
            .iter()
            .zip(&needed)
            .any(|(b, want)| b.index != *want)
    {
        return Err(TransEdgeError::Verification(
            "multiproof bucket set does not match the key set".into(),
        ));
    }
    for b in &proof.buckets {
        // Strictly sorted — otherwise a malicious prover could hide an
        // entry from the binary search.
        for pair in b.entries.windows(2) {
            if pair[0].key_hash >= pair[1].key_hash {
                return Err(TransEdgeError::Verification(
                    "multiproof bucket not strictly sorted".into(),
                ));
            }
        }
        // Every entry must actually belong to its bucket.
        for e in &b.entries {
            let p = u64::from_be_bytes(e.key_hash.0[..8].try_into().unwrap());
            if p >> (64 - depth) != b.index {
                return Err(TransEdgeError::Verification(
                    "multiproof entry outside its bucket".into(),
                ));
            }
        }
    }
    // Joint fold: pair frontier nodes that are each other's sibling;
    // consume a shipped sibling for every unpaired node.
    let mut frontier: Vec<(u64, Digest)> = proof
        .buckets
        .iter()
        .map(|b| (b.index, hash_leaf(&b.entries)))
        .collect();
    let mut sibs = proof.siblings.iter();
    for _ in 0..depth {
        let mut next: Vec<(u64, Digest)> = Vec::with_capacity(frontier.len());
        let mut i = 0;
        while i < frontier.len() {
            let (idx, digest) = frontier[i];
            if idx & 1 == 0 && frontier.get(i + 1).is_some_and(|(j, _)| *j == idx + 1) {
                next.push((idx >> 1, hash_node(&digest, &frontier[i + 1].1)));
                i += 2;
            } else {
                let Some(sib) = sibs.next() else {
                    return Err(TransEdgeError::Verification(
                        "multiproof has too few siblings".into(),
                    ));
                };
                let parent = if idx & 1 == 0 {
                    hash_node(&digest, sib)
                } else {
                    hash_node(sib, &digest)
                };
                next.push((idx >> 1, parent));
                i += 1;
            }
        }
        frontier = next;
    }
    if sibs.next().is_some() {
        return Err(TransEdgeError::Verification(
            "multiproof has unconsumed siblings".into(),
        ));
    }
    if frontier.len() != 1 || frontier[0].1 != *root {
        return Err(TransEdgeError::Verification(
            "multiproof root mismatch".into(),
        ));
    }
    // Resolve every key against its (now authenticated) bucket.
    let mut out = Vec::with_capacity(keys.len());
    for (kh, bidx) in key_hashes.iter().zip(&key_buckets) {
        let pos = needed.binary_search(bidx).expect("bucket set checked");
        let bucket = &proof.buckets[pos].entries;
        let found = bucket
            .binary_search_by(|e| e.key_hash.cmp(kh))
            .ok()
            .map(|p| bucket[p].value_hash);
        out.push(match found {
            Some(vh) => Verified::Present(vh),
            None => Verified::Absent,
        });
    }
    Ok(out)
}

pub(crate) fn hash_leaf(entries: &[BucketEntry]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[TAG_LEAF]);
    h.update(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        h.update(e.key_hash.as_bytes());
        h.update(e.value_hash.as_bytes());
    }
    h.finalize()
}

pub(crate) fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[TAG_NODE]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Key {
        Key::from_u32(i)
    }

    fn vh(s: &str) -> Digest {
        value_digest(&Value::from(s))
    }

    #[test]
    fn empty_tree_has_default_root() {
        let t = MerkleTree::with_depth(4);
        let u = MerkleTree::with_depth(4);
        assert_eq!(t.root(), u.root());
        assert!(t.is_empty());
        // Different depths produce different roots.
        assert_ne!(t.root(), MerkleTree::with_depth(5).root());
    }

    #[test]
    fn insert_changes_root_update_changes_root() {
        let mut t = MerkleTree::with_depth(8);
        let r0 = t.root();
        t.insert(&key(1), vh("a"));
        let r1 = t.root();
        assert_ne!(r0, r1);
        t.insert(&key(1), vh("b"));
        let r2 = t.root();
        assert_ne!(r1, r2);
        // Re-inserting the same value is a no-op on the root.
        t.insert(&key(1), vh("b"));
        assert_eq!(t.root(), r2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_restores_previous_root() {
        let mut t = MerkleTree::with_depth(8);
        t.insert(&key(1), vh("a"));
        let r1 = t.root();
        t.insert(&key(2), vh("b"));
        assert_eq!(t.remove(&key(2)), Some(vh("b")));
        assert_eq!(t.root(), r1);
        assert_eq!(t.remove(&key(2)), None);
        assert_eq!(t.remove(&key(1)), Some(vh("a")));
        assert_eq!(t.root(), MerkleTree::with_depth(8).root());
        assert!(t.is_empty());
    }

    #[test]
    fn inclusion_proof_verifies() {
        let mut t = MerkleTree::with_depth(10);
        for i in 0..100 {
            t.insert(&key(i), vh(&format!("v{i}")));
        }
        let root = t.root();
        for i in (0..100).step_by(7) {
            let proof = t.prove(&key(i));
            let got = verify_proof(&root, 10, &key(i), &proof).unwrap();
            assert_eq!(got, Verified::Present(vh(&format!("v{i}"))));
        }
    }

    #[test]
    fn non_inclusion_proof_verifies() {
        let mut t = MerkleTree::with_depth(10);
        for i in 0..50 {
            t.insert(&key(i), vh("x"));
        }
        let root = t.root();
        let absent = key(9999);
        let proof = t.prove(&absent);
        assert_eq!(
            verify_proof(&root, 10, &absent, &proof).unwrap(),
            Verified::Absent
        );
    }

    #[test]
    fn proof_against_wrong_root_fails() {
        let mut t = MerkleTree::with_depth(6);
        t.insert(&key(1), vh("a"));
        let proof = t.prove(&key(1));
        t.insert(&key(2), vh("b"));
        let new_root = t.root();
        assert!(verify_proof(&new_root, 6, &key(1), &proof).is_err());
    }

    #[test]
    fn tampered_proof_fails() {
        let mut t = MerkleTree::with_depth(6);
        for i in 0..20 {
            t.insert(&key(i), vh(&i.to_string()));
        }
        let root = t.root();
        let mut proof = t.prove(&key(3));
        // Lie about the value.
        for e in proof.bucket.iter_mut() {
            e.value_hash = vh("forged");
        }
        assert!(verify_proof(&root, 6, &key(3), &proof).is_err());
        // Tamper a sibling.
        let mut proof2 = t.prove(&key(3));
        proof2.siblings[2] = Digest([0xFF; 32]);
        assert!(verify_proof(&root, 6, &key(3), &proof2).is_err());
        // Wrong sibling count.
        let mut proof3 = t.prove(&key(3));
        proof3.siblings.pop();
        assert!(verify_proof(&root, 6, &key(3), &proof3).is_err());
    }

    #[test]
    fn prover_cannot_hide_entry_by_unsorting_bucket() {
        // Shallow tree forces collisions: depth 1 → 2 buckets.
        let mut t = MerkleTree::with_depth(1);
        for i in 0..16 {
            t.insert(&key(i), vh(&i.to_string()));
        }
        let root = t.root();
        let target = key(3);
        let mut proof = t.prove(&target);
        assert!(proof.bucket.len() > 1, "want a multi-entry bucket");
        // Attempt: reverse the bucket so binary search misses the key,
        // "proving" absence of a present key.
        proof.bucket.reverse();
        assert!(verify_proof(&root, 1, &target, &proof).is_err());
    }

    #[test]
    fn bucket_collisions_are_exact() {
        // depth 1: two buckets, plenty of collisions; lookups must
        // still be exact per key.
        let mut t = MerkleTree::with_depth(1);
        for i in 0..32 {
            t.insert(&key(i), vh(&format!("val{i}")));
        }
        assert_eq!(t.len(), 32);
        let root = t.root();
        for i in 0..32 {
            let proof = t.prove(&key(i));
            assert_eq!(
                verify_proof(&root, 1, &key(i), &proof).unwrap(),
                Verified::Present(vh(&format!("val{i}")))
            );
        }
        let proof = t.prove(&key(555));
        assert_eq!(
            verify_proof(&root, 1, &key(555), &proof).unwrap(),
            Verified::Absent
        );
    }

    #[test]
    fn batch_update_matches_sequential_inserts() {
        let mut a = MerkleTree::with_depth(12);
        let mut b = MerkleTree::with_depth(12);
        let keys: Vec<Key> = (0..500).map(key).collect();
        let updates: Vec<(&Key, Digest)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k, vh(&format!("{i}"))))
            .collect();
        for (k, v) in &updates {
            a.insert(k, *v);
        }
        b.batch_update(updates.iter().map(|(k, v)| (*k, *v)));
        assert_eq!(a.root(), b.root());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn batch_update_overwrites() {
        let mut t = MerkleTree::with_depth(8);
        t.insert(&key(1), vh("old"));
        t.batch_update([(&key(1), vh("new"))]);
        assert_eq!(t.get(&key(1)), Some(vh("new")));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_matches_inserted() {
        let mut t = MerkleTree::new();
        assert_eq!(t.get(&key(7)), None);
        t.insert(&key(7), vh("x"));
        assert_eq!(t.get(&key(7)), Some(vh("x")));
    }

    #[test]
    fn proof_encoded_len_is_accurate_enough() {
        let mut t = MerkleTree::with_depth(10);
        for i in 0..64 {
            t.insert(&key(i), vh("v"));
        }
        let p = t.prove(&key(5));
        let actual = p.encode_to_vec().len();
        let estimate = p.encoded_len();
        assert!(
            (actual as i64 - estimate as i64).abs() <= 8,
            "estimate {estimate} vs actual {actual}"
        );
    }

    #[test]
    fn wire_roundtrip() {
        use transedge_common::wire::roundtrip;
        let mut t = MerkleTree::with_depth(5);
        for i in 0..10 {
            t.insert(&key(i), vh("v"));
        }
        roundtrip(&t.prove(&key(3)));
    }

    #[test]
    fn multi_proof_wire_roundtrip_and_len() {
        use crate::VersionedMerkleTree;
        use transedge_common::wire::roundtrip;
        let mut vt = VersionedMerkleTree::with_depth(6);
        let keys: Vec<Key> = (0..12).map(key).collect();
        vt.apply_batch(0, keys.iter().map(|k| (k, vh("v"))));
        let p = vt.prove_multi(&keys[..5], 0);
        roundtrip(&p);
        let actual = p.encode_to_vec().len();
        let estimate = p.encoded_len();
        assert!(
            (actual as i64 - estimate as i64).abs() <= 16,
            "estimate {estimate} vs actual {actual}"
        );
    }

    #[test]
    fn multi_proof_rejects_empty_and_unsorted() {
        use crate::VersionedMerkleTree;
        let mut vt = VersionedMerkleTree::with_depth(4);
        // Depth 4 → 16 buckets: plenty of collisions among 24 keys.
        let keys: Vec<Key> = (0..24).map(key).collect();
        vt.apply_batch(0, keys.iter().map(|k| (k, vh("v"))));
        let root = vt.root_at(0);
        let asked = &keys[..6];
        let good = vt.prove_multi(asked, 0);
        assert!(verify_multi_proof(&root, 4, asked, &good).is_ok());
        assert!(verify_multi_proof(&root, 4, &[], &good).is_err());
        // Unsorting a multi-entry bucket must be caught even when the
        // fold would otherwise be order-insensitive to the search.
        if let Some(b) = good
            .buckets
            .iter()
            .position(|b| b.entries.len() > 1)
            .map(|i| {
                let mut p = good.clone();
                p.buckets[i].entries.reverse();
                p
            })
        {
            assert!(verify_multi_proof(&root, 4, asked, &b).is_err());
        }
        // Extra sibling appended: unconsumed → rejected.
        let mut extra = good.clone();
        extra.siblings.push(Digest([1; 32]));
        assert!(verify_multi_proof(&root, 4, asked, &extra).is_err());
    }
}
