//! Property-based tests: the Merkle trees against a HashMap model.

use std::collections::HashMap;

use proptest::prelude::*;
use transedge_common::{Key, Value};
use transedge_crypto::merkle::{value_digest, verify_proof, Verified};
use transedge_crypto::{Digest, MerkleTree, VersionedMerkleTree};

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u8),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
    ]
}

fn vh(tag: u8) -> Digest {
    value_digest(&Value::filled(8, tag))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence: tree contents match a HashMap model, every
    /// present key has a verifying inclusion proof, every absent key a
    /// verifying non-inclusion proof.
    #[test]
    fn merkle_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        // Shallow tree → dense buckets → collision paths exercised.
        let mut tree = MerkleTree::with_depth(4);
        let mut model: HashMap<u16, u8> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&Key::from_u32(*k as u32), vh(*v));
                    model.insert(*k, *v);
                }
                Op::Remove(k) => {
                    tree.remove(&Key::from_u32(*k as u32));
                    model.remove(k);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let root = tree.root();
        // Every modelled key verifies with the right value hash.
        for (k, v) in &model {
            let key = Key::from_u32(*k as u32);
            let proof = tree.prove(&key);
            let got = verify_proof(&root, 4, &key, &proof).unwrap();
            prop_assert_eq!(got, Verified::Present(vh(*v)));
        }
        // A few absent keys verify as absent.
        for k in 600u32..605 {
            let key = Key::from_u32(k);
            let proof = tree.prove(&key);
            prop_assert_eq!(verify_proof(&root, 4, &key, &proof).unwrap(), Verified::Absent);
        }
    }

    /// Root is a pure function of contents: any insertion order yields
    /// the same root.
    #[test]
    fn merkle_root_is_order_independent(
        mut entries in proptest::collection::hash_map(any::<u16>(), any::<u8>(), 1..40),
        seed in any::<u64>(),
    ) {
        let items: Vec<(u16, u8)> = entries.drain().collect();
        let mut a = MerkleTree::with_depth(6);
        for (k, v) in &items {
            a.insert(&Key::from_u32(*k as u32), vh(*v));
        }
        // Shuffle deterministically by seed.
        let mut shuffled = items.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s as usize) % (i + 1));
        }
        let mut b = MerkleTree::with_depth(6);
        for (k, v) in &shuffled {
            b.insert(&Key::from_u32(*k as u32), vh(*v));
        }
        prop_assert_eq!(a.root(), b.root());
    }

    /// Versioned tree: historical roots and proofs stay valid as new
    /// versions apply; rollback restores the previous root exactly.
    #[test]
    fn versioned_history_is_immutable(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u16>(), any::<u8>()), 1..10),
            1..8,
        )
    ) {
        let mut vt = VersionedMerkleTree::with_depth(6);
        let mut roots = Vec::new();
        for (version, batch) in batches.iter().enumerate() {
            let keys: Vec<(Key, Digest)> = batch
                .iter()
                .map(|(k, v)| (Key::from_u32(*k as u32 % 256), vh(*v)))
                .collect();
            let root = vt.apply_batch(version as u64, keys.iter().map(|(k, d)| (k, *d)));
            roots.push(root);
        }
        // All historical roots still readable.
        for (version, root) in roots.iter().enumerate() {
            prop_assert_eq!(vt.root_at(version as u64), *root);
        }
        // Rollback of the newest version restores the prior root.
        if roots.len() >= 2 {
            let last = roots.len() - 1;
            vt.rollback(last as u64);
            prop_assert_eq!(vt.latest_version(), Some(last as u64 - 1));
            prop_assert_eq!(vt.root_at(last as u64), roots[last - 1]);
        }
    }
}
