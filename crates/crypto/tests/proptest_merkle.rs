//! Property-based tests: the Merkle trees against a HashMap model.

use std::collections::HashMap;

use proptest::prelude::*;
use transedge_common::{Key, Value};
use transedge_crypto::merkle::{value_digest, verify_proof, Verified};
use transedge_crypto::{verify_multi_proof, Digest, MerkleTree, VersionedMerkleTree};

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u8),
    Remove(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
    ]
}

fn vh(tag: u8) -> Digest {
    value_digest(&Value::filled(8, tag))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence: tree contents match a HashMap model, every
    /// present key has a verifying inclusion proof, every absent key a
    /// verifying non-inclusion proof.
    #[test]
    fn merkle_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        // Shallow tree → dense buckets → collision paths exercised.
        let mut tree = MerkleTree::with_depth(4);
        let mut model: HashMap<u16, u8> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&Key::from_u32(*k as u32), vh(*v));
                    model.insert(*k, *v);
                }
                Op::Remove(k) => {
                    tree.remove(&Key::from_u32(*k as u32));
                    model.remove(k);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let root = tree.root();
        // Every modelled key verifies with the right value hash.
        for (k, v) in &model {
            let key = Key::from_u32(*k as u32);
            let proof = tree.prove(&key);
            let got = verify_proof(&root, 4, &key, &proof).unwrap();
            prop_assert_eq!(got, Verified::Present(vh(*v)));
        }
        // A few absent keys verify as absent.
        for k in 600u32..605 {
            let key = Key::from_u32(k);
            let proof = tree.prove(&key);
            prop_assert_eq!(verify_proof(&root, 4, &key, &proof).unwrap(), Verified::Absent);
        }
    }

    /// Root is a pure function of contents: any insertion order yields
    /// the same root.
    #[test]
    fn merkle_root_is_order_independent(
        mut entries in proptest::collection::hash_map(any::<u16>(), any::<u8>(), 1..40),
        seed in any::<u64>(),
    ) {
        let items: Vec<(u16, u8)> = entries.drain().collect();
        let mut a = MerkleTree::with_depth(6);
        for (k, v) in &items {
            a.insert(&Key::from_u32(*k as u32), vh(*v));
        }
        // Shuffle deterministically by seed.
        let mut shuffled = items.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s as usize) % (i + 1));
        }
        let mut b = MerkleTree::with_depth(6);
        for (k, v) in &shuffled {
            b.insert(&Key::from_u32(*k as u32), vh(*v));
        }
        prop_assert_eq!(a.root(), b.root());
    }

    /// Versioned tree: historical roots and proofs stay valid as new
    /// versions apply; rollback restores the previous root exactly.
    #[test]
    fn versioned_history_is_immutable(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u16>(), any::<u8>()), 1..10),
            1..8,
        )
    ) {
        let mut vt = VersionedMerkleTree::with_depth(6);
        let mut roots = Vec::new();
        for (version, batch) in batches.iter().enumerate() {
            let keys: Vec<(Key, Digest)> = batch
                .iter()
                .map(|(k, v)| (Key::from_u32(*k as u32 % 256), vh(*v)))
                .collect();
            let root = vt.apply_batch(version as u64, keys.iter().map(|(k, d)| (k, *d)));
            roots.push(root);
        }
        // All historical roots still readable.
        for (version, root) in roots.iter().enumerate() {
            prop_assert_eq!(vt.root_at(version as u64), *root);
        }
        // Rollback of the newest version restores the prior root.
        if roots.len() >= 2 {
            let last = roots.len() - 1;
            vt.rollback(last as u64);
            prop_assert_eq!(vt.latest_version(), Some(last as u64 - 1));
            prop_assert_eq!(vt.root_at(last as u64), roots[last - 1]);
        }
    }

    /// Multiproofs agree with per-key proofs on any key set, and no
    /// single-element mutation survives: dropping or substituting any
    /// sibling, dropping any bucket entry, or splicing the proof onto
    /// another version's root all break verification.
    #[test]
    fn multi_proof_sound_and_unmalleable(
        entries in proptest::collection::hash_map(any::<u16>(), any::<u8>(), 4..40),
        asked in proptest::collection::vec(any::<u16>(), 1..10),
        corrupt_at in any::<u64>(),
    ) {
        // Shallow tree → dense buckets → collision paths exercised.
        let mut vt = VersionedMerkleTree::with_depth(5);
        let items: Vec<(Key, Digest)> = entries
            .iter()
            .map(|(k, v)| (Key::from_u32(*k as u32 % 512), vh(*v)))
            .collect();
        vt.apply_batch(0, items.iter().map(|(k, d)| (k, *d)));
        // A second version so cross-version splices have a target.
        vt.apply_batch(1, [(&Key::from_u32(0), vh(0xEE))]);
        let root = vt.root_at(1);
        let keys: Vec<Key> = asked.iter().map(|k| Key::from_u32(*k as u32 % 600)).collect();
        let proof = vt.prove_multi(&keys, 1);
        let got = verify_multi_proof(&root, 5, &keys, &proof).unwrap();
        for (key, verdict) in keys.iter().zip(&got) {
            let single = verify_proof(&root, 5, key, &vt.prove_at(key, 1)).unwrap();
            prop_assert_eq!(*verdict, single);
        }
        // Drop / substitute one sibling (position chosen by the fuzzed
        // index).
        if !proof.siblings.is_empty() {
            let i = (corrupt_at as usize) % proof.siblings.len();
            let mut dropped = proof.clone();
            dropped.siblings.remove(i);
            prop_assert!(verify_multi_proof(&root, 5, &keys, &dropped).is_err());
            let mut swapped = proof.clone();
            swapped.siblings[i] = Digest([0x5C; 32]);
            prop_assert!(verify_multi_proof(&root, 5, &keys, &swapped).is_err());
        }
        // Drop one leaf entry from a non-empty bucket.
        if let Some(b) = proof.buckets.iter().position(|b| !b.entries.is_empty()) {
            let mut omitted = proof.clone();
            let e = (corrupt_at as usize) % omitted.buckets[b].entries.len();
            omitted.buckets[b].entries.remove(e);
            prop_assert!(verify_multi_proof(&root, 5, &keys, &omitted).is_err());
        }
        // Cross-version splice: version 0's proof against version 1's
        // root only verifies when the two roots coincide.
        let stale = vt.prove_multi(&keys, 0);
        if vt.root_at(0) != root {
            prop_assert!(verify_multi_proof(&root, 5, &keys, &stale).is_err());
        }
    }
}
