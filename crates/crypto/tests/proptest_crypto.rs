//! Property-based tests over the signature and hash primitives.

use proptest::prelude::*;
use transedge_crypto::{sha256, Keypair};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))] // signing is ~100µs/op

    /// sign/verify round-trips for arbitrary seeds and messages.
    #[test]
    fn ed25519_roundtrip(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let kp = Keypair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
    }

    /// Verification rejects any single bit flip in the message.
    #[test]
    fn ed25519_rejects_bitflips(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let kp = Keypair::from_seed(seed);
        let sig = kp.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip_byte.index(tampered.len());
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(!kp.public().verify(&tampered, &sig));
    }

    /// SHA-256 streaming equals one-shot for any chunking.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<prop::sample::Index>(),
    ) {
        let mid = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = transedge_crypto::Sha256::new();
        h.update(&data[..mid]);
        h.update(&data[mid..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct messages (almost surely) hash differently — and equal
    /// messages always hash equally.
    #[test]
    fn sha256_deterministic(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut other = data.clone();
        other.push(0x01);
        prop_assert_ne!(sha256(&data), sha256(&other));
    }
}
