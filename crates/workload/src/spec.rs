//! Workload specification and generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use transedge_common::{ClusterId, ClusterTopology, Key, Value};
use transedge_core::client::ClientOp;
use transedge_core::ReadQuery;
use transedge_crypto::range::MAX_RANGE_BUCKETS;
use transedge_crypto::ScanRange;

use crate::zipf::Zipfian;

/// Transaction-type shares, in percent (must sum to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    pub read_only_pct: u8,
    pub local_rw_pct: u8,
    pub distributed_rw_pct: u8,
    pub write_only_pct: u8,
}

impl Mix {
    pub fn validate(&self) {
        let sum = self.read_only_pct as u32
            + self.local_rw_pct as u32
            + self.distributed_rw_pct as u32
            + self.write_only_pct as u32;
        assert_eq!(sum, 100, "mix percentages must sum to 100, got {sum}");
    }
}

/// Key-selection distribution.
#[derive(Clone, Debug)]
pub enum KeyDistribution {
    /// Paper default: uniform over the key space.
    Uniform,
    /// Skewed access (YCSB's zipfian) — an extension knob for
    /// contention experiments.
    Zipfian { theta: f64 },
}

/// Everything needed to generate a client script.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub topo: ClusterTopology,
    /// Total keys (the deployment must preload at least this many).
    pub n_keys: u32,
    pub value_size: usize,
    pub mix: Mix,
    /// Reads per read-write transaction (paper: 5).
    pub rw_reads: usize,
    /// Writes per read-write transaction (paper: 3).
    pub rw_writes: usize,
    /// Keys read by a read-only transaction (paper: 5, one per
    /// cluster).
    pub rot_keys: usize,
    /// Clusters a read-only transaction spans (paper: varies 1–5).
    pub rot_clusters: usize,
    pub distribution: KeyDistribution,
    /// Percent of *all* operations issued as verified range scans
    /// (rolled before the [`Mix`], which governs the rest). Scans are
    /// the extension query type — 0 reproduces the paper's mixes
    /// exactly.
    pub scan_pct: u8,
    /// Width of each scan window, in tree-order buckets. Windows are
    /// aligned to multiples of this width so repeated scans revisit the
    /// same windows and edge caches get reuse.
    pub scan_buckets: u64,
    /// Partitions each scan scatters over (1 = the classic
    /// single-partition scan; more emits unified scatter-gather
    /// queries).
    pub scan_clusters: usize,
    /// Pages per scan: the scanned range spans `scan_pages` consecutive
    /// `scan_buckets`-wide windows, paginated by the client session
    /// under one pinned snapshot (1 = single-window scans).
    pub scan_pages: u64,
    /// Merkle tree depth of the deployment the script will run against
    /// (scan windows must stay inside its `2^depth` leaf space).
    pub tree_depth: u32,
    /// Emit read-only transactions as unified [`ReadQuery`] point
    /// queries (`ClientOp::Query`) instead of the `ReadOnly` sugar —
    /// what single-contact (edge-tier scatter-gather) experiments
    /// drive. Identical semantics; the typed form is what the
    /// directory/forwarding benches measure.
    pub unified_points: bool,
    /// Rotation applied to the zipfian rank → key mapping within each
    /// cluster pool. Two specs differing only in `hot_offset` skew the
    /// same total mass onto *different* keys — a flash crowd moving to
    /// a new hot set mid-run (the scenario layer's `HotKeyShift`
    /// regenerates client tails with a shifted offset). Ignored under
    /// [`KeyDistribution::Uniform`].
    pub hot_offset: u64,
}

impl WorkloadSpec {
    /// The paper's default transaction shapes on its 5-cluster setup:
    /// RW = 5 reads + 3 writes across clusters, ROT = 5 keys, one per
    /// cluster (§5.1).
    pub fn paper_default(topo: ClusterTopology) -> Self {
        let n = topo.n_clusters();
        WorkloadSpec {
            topo,
            n_keys: 10_000,
            value_size: 256,
            mix: Mix {
                read_only_pct: 50,
                local_rw_pct: 20,
                distributed_rw_pct: 20,
                write_only_pct: 10,
            },
            rw_reads: 5,
            rw_writes: 3,
            rot_keys: n,
            rot_clusters: n,
            distribution: KeyDistribution::Uniform,
            scan_pct: 0,
            scan_buckets: 256,
            scan_clusters: 1,
            scan_pages: 1,
            tree_depth: transedge_core::node::DEFAULT_TREE_DEPTH,
            unified_points: false,
            hot_offset: 0,
        }
    }

    /// The same spec with its zipfian hot set rotated by `offset`
    /// ranks — the flash-crowd knob (see [`WorkloadSpec::hot_offset`]).
    pub fn with_hot_offset(self, offset: u64) -> Self {
        WorkloadSpec {
            hot_offset: offset,
            ..self
        }
    }

    /// 100% cross-partition point queries through the unified query
    /// API: `keys` keys spread over `clusters` partitions per query,
    /// emitted as `ClientOp::Query` — the workload the edge-tier
    /// scatter-gather (single-contact) experiments run.
    pub fn scatter_points(topo: ClusterTopology, keys: usize, clusters: usize) -> Self {
        WorkloadSpec {
            unified_points: true,
            ..Self::read_only(topo, keys, clusters)
        }
    }

    /// Throughput mode: 100% *single-partition* unified point queries
    /// of `keys` keys each. With `keys` at or above the serving tier's
    /// multiproof threshold every request is answered by one coalesced
    /// Merkle multiproof, which is what the ops/sec benches measure.
    pub fn throughput_points(topo: ClusterTopology, keys: usize) -> Self {
        Self::scatter_points(topo, keys, 1)
    }

    /// Saturating open-loop scripts: `clients` parallel actors, each
    /// holding `ops_per_client` back-to-back operations drawn from this
    /// spec under a distinct derived seed. The simulator's actors are
    /// closed-loop (one op in flight each), so offered load is set by
    /// fleet width, not timers — a wide enough fleet keeps the serving
    /// tier saturated regardless of individual latencies, which is the
    /// open-loop approximation the throughput bench drives.
    pub fn generate_fleet(
        &self,
        clients: usize,
        ops_per_client: usize,
        seed: u64,
    ) -> Vec<Vec<ClientOp>> {
        (0..clients)
            .map(|c| {
                self.generate(
                    ops_per_client,
                    seed ^ ((c as u64 + 1).wrapping_mul(0x9E37_79B9)),
                )
            })
            .collect()
    }

    /// 100% verified range scans of `scan_buckets`-wide windows, spread
    /// over all partitions.
    pub fn scans(topo: ClusterTopology, scan_buckets: u64) -> Self {
        WorkloadSpec {
            scan_pct: 100,
            scan_buckets,
            ..Self::paper_default(topo)
        }
    }

    /// 100% unified scan queries: each scatters the same `pages`-window
    /// range (windows of `scan_buckets` buckets) over `clusters`
    /// partitions, paginated under one pinned snapshot per partition.
    pub fn scatter_scans(
        topo: ClusterTopology,
        scan_buckets: u64,
        clusters: usize,
        pages: u64,
    ) -> Self {
        assert!(clusters >= 1 && clusters <= topo.n_clusters());
        WorkloadSpec {
            scan_pct: 100,
            scan_buckets,
            scan_clusters: clusters,
            scan_pages: pages.max(1),
            ..Self::paper_default(topo)
        }
    }

    /// 100% read-only transactions over `clusters` clusters reading
    /// `keys` keys total.
    pub fn read_only(topo: ClusterTopology, keys: usize, clusters: usize) -> Self {
        assert!(clusters <= topo.n_clusters());
        assert!(keys >= clusters);
        WorkloadSpec {
            mix: Mix {
                read_only_pct: 100,
                local_rw_pct: 0,
                distributed_rw_pct: 0,
                write_only_pct: 0,
            },
            rot_keys: keys,
            rot_clusters: clusters,
            ..Self::paper_default(topo)
        }
    }

    /// 100% distributed read-write transactions with the given
    /// read/write counts.
    pub fn distributed_rw(topo: ClusterTopology, reads: usize, writes: usize) -> Self {
        WorkloadSpec {
            mix: Mix {
                read_only_pct: 0,
                local_rw_pct: 0,
                distributed_rw_pct: 100,
                write_only_pct: 0,
            },
            rw_reads: reads,
            rw_writes: writes,
            ..Self::paper_default(topo)
        }
    }

    /// 100% local read-write transactions.
    pub fn local_rw(topo: ClusterTopology, reads: usize, writes: usize) -> Self {
        WorkloadSpec {
            mix: Mix {
                read_only_pct: 0,
                local_rw_pct: 100,
                distributed_rw_pct: 0,
                write_only_pct: 0,
            },
            rw_reads: reads,
            rw_writes: writes,
            ..Self::paper_default(topo)
        }
    }

    /// 100% local write-only transactions.
    pub fn write_only(topo: ClusterTopology, writes: usize) -> Self {
        WorkloadSpec {
            mix: Mix {
                read_only_pct: 0,
                local_rw_pct: 0,
                distributed_rw_pct: 0,
                write_only_pct: 100,
            },
            rw_writes: writes,
            ..Self::paper_default(topo)
        }
    }

    /// Generate a deterministic script of `count` operations.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<ClientOp> {
        self.mix.validate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7261_6e64);
        let zipf = match &self.distribution {
            KeyDistribution::Zipfian { theta } => Some(Zipfian::new(self.n_keys as u64, *theta)),
            KeyDistribution::Uniform => None,
        };
        // Pre-index keys by cluster for cluster-targeted picks. Keys
        // are grouped once; picking within a cluster is O(1).
        let mut by_cluster: Vec<Vec<u32>> = vec![Vec::new(); self.topo.n_clusters()];
        for i in 0..self.n_keys {
            by_cluster[self.topo.partition_of(&Key::from_u32(i)).as_usize()].push(i);
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            // Scans roll first (the extension query type); the paper's
            // mix governs everything else.
            if self.scan_pct > 0 && rng.gen_range(0u32..100) < self.scan_pct as u32 {
                ops.push(self.gen_scan(&mut rng));
                continue;
            }
            let roll = rng.gen_range(0u32..100);
            let ro = self.mix.read_only_pct as u32;
            let lrw = ro + self.mix.local_rw_pct as u32;
            let drw = lrw + self.mix.distributed_rw_pct as u32;
            let op = if roll < ro {
                self.gen_rot(&mut rng, &by_cluster, zipf.as_ref())
            } else if roll < lrw {
                self.gen_local_rw(&mut rng, &by_cluster, true)
            } else if roll < drw {
                self.gen_distributed_rw(&mut rng, &by_cluster)
            } else {
                self.gen_local_rw(&mut rng, &by_cluster, false)
            };
            ops.push(op);
        }
        ops
    }

    fn pick_in_cluster(
        &self,
        rng: &mut SmallRng,
        by_cluster: &[Vec<u32>],
        cluster: ClusterId,
        exclude: &[Key],
    ) -> Key {
        let pool = &by_cluster[cluster.as_usize()];
        assert!(!pool.is_empty(), "no keys in {cluster}");
        loop {
            let key = Key::from_u32(pool[rng.gen_range(0..pool.len())]);
            if !exclude.contains(&key) {
                return key;
            }
        }
    }

    fn pick_clusters(&self, rng: &mut SmallRng, n: usize) -> Vec<ClusterId> {
        let total = self.topo.n_clusters();
        assert!(n <= total);
        let mut all: Vec<ClusterId> = self.topo.clusters().collect();
        // Partial Fisher–Yates.
        for i in 0..n {
            let j = rng.gen_range(i..total);
            all.swap(i, j);
        }
        all.truncate(n);
        all
    }

    /// "Read-only transactions read n unique keys from m clusters"
    /// (§5.1): spread `rot_keys` keys round-robin over `rot_clusters`
    /// clusters.
    fn gen_rot(
        &self,
        rng: &mut SmallRng,
        by_cluster: &[Vec<u32>],
        zipf: Option<&Zipfian>,
    ) -> ClientOp {
        let clusters = self.pick_clusters(rng, self.rot_clusters);
        let mut keys: Vec<Key> = Vec::with_capacity(self.rot_keys);
        for i in 0..self.rot_keys {
            let cluster = clusters[i % clusters.len()];
            let key = match zipf {
                // Zipfian: skew *which* key within the cluster pool.
                Some(z) => {
                    let pool = &by_cluster[cluster.as_usize()];
                    let rank = (z.sample(rng) as usize + self.hot_offset as usize) % pool.len();
                    Key::from_u32(pool[rank])
                }
                None => self.pick_in_cluster(rng, by_cluster, cluster, &keys),
            };
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        if self.unified_points {
            ClientOp::Query {
                query: ReadQuery::point(keys),
            }
        } else {
            ClientOp::ReadOnly { keys }
        }
    }

    /// A verified scan: an aligned range of `scan_pages` consecutive
    /// `scan_buckets`-wide windows over `scan_clusters` partitions.
    /// Alignment keeps the window vocabulary small so repeated scans
    /// hit edge caches; the paper has no scan workload — this drives
    /// the extension query types. Single-partition single-window scans
    /// use the classic [`ClientOp::RangeScan`] sugar; anything larger
    /// becomes a unified [`ClientOp::Query`] (paginated and/or
    /// scatter-gather).
    fn gen_scan(&self, rng: &mut SmallRng) -> ClientOp {
        let n = self.scan_clusters.clamp(1, self.topo.n_clusters().max(1));
        let clusters = self.pick_clusters(rng, n);
        let leaves = 1u64 << self.tree_depth;
        let window = self.scan_buckets.clamp(1, leaves.min(MAX_RANGE_BUCKETS));
        let pages = self.scan_pages.max(1);
        let span = (window * pages).min(leaves);
        let slots = (leaves / span).max(1);
        let start = rng.gen_range(0..slots) * span;
        let range = ScanRange::new(start, (start + span - 1).min(leaves - 1));
        if clusters.len() == 1 && pages == 1 {
            ClientOp::RangeScan {
                cluster: clusters[0],
                range,
            }
        } else {
            ClientOp::Query {
                query: ReadQuery::scatter_scan(clusters, range, window),
            }
        }
    }

    fn gen_local_rw(
        &self,
        rng: &mut SmallRng,
        by_cluster: &[Vec<u32>],
        with_reads: bool,
    ) -> ClientOp {
        let cluster = self.pick_clusters(rng, 1)[0];
        let mut used: Vec<Key> = Vec::new();
        let reads: Vec<Key> = if with_reads {
            (0..self.rw_reads)
                .map(|_| {
                    let k = self.pick_in_cluster(rng, by_cluster, cluster, &used);
                    used.push(k.clone());
                    k
                })
                .collect()
        } else {
            Vec::new()
        };
        let writes: Vec<(Key, Value)> = (0..self.rw_writes)
            .map(|_| {
                let k = self.pick_in_cluster(rng, by_cluster, cluster, &used);
                used.push(k.clone());
                (k, self.random_value(rng))
            })
            .collect();
        ClientOp::ReadWrite { reads, writes }
    }

    /// "Each read-write transaction contains 5 read and 3 write
    /// operations distributed across 5 clusters" (§5.1). The *write*
    /// count determines how many clusters participate — the paper reads
    /// "R=5,W=1" as essentially a local transaction (§5.2, Figure 10
    /// discussion) — and reads are drawn from those same clusters.
    fn gen_distributed_rw(&self, rng: &mut SmallRng, by_cluster: &[Vec<u32>]) -> ClientOp {
        let span = self.topo.n_clusters().min(self.rw_writes.max(1));
        let clusters = self.pick_clusters(rng, span);
        let mut used: Vec<Key> = Vec::new();
        let pick = |i: usize, rng: &mut SmallRng, used: &mut Vec<Key>| {
            let cluster = clusters[i % clusters.len()];
            let k = self.pick_in_cluster(rng, by_cluster, cluster, used);
            used.push(k.clone());
            k
        };
        let reads: Vec<Key> = (0..self.rw_reads)
            .map(|i| pick(i, rng, &mut used))
            .collect();
        let writes: Vec<(Key, Value)> = (0..self.rw_writes)
            .map(|i| {
                let k = pick(self.rw_reads + i, rng, &mut used);
                (k, self.random_value(rng))
            })
            .collect();
        ClientOp::ReadWrite { reads, writes }
    }

    fn random_value(&self, rng: &mut SmallRng) -> Value {
        Value::filled(self.value_size, rng.gen())
    }
}
