//! Zipfian rank generator (YCSB's algorithm, after Gray et al.,
//! "Quickly Generating Billion-Record Synthetic Databases").
//!
//! The paper's workloads use uniform key choice; zipfian is an
//! extension knob used by the contention ablation bench.

use rand::Rng;

/// Samples ranks in `[0, n)` with P(rank k) ∝ 1/(k+1)^θ.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// `theta` in (0, 1); YCSB's default is 0.99.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a cutoff, then the integral approximation —
        // bounded work for billion-key spaces.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-θ dx from EXACT to n
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Draw one rank (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With θ=0.99, the top 1% of keys should draw far more than 1%
        // of accesses.
        let frac = hot as f64 / n as f64;
        assert!(frac > 0.3, "hot fraction {frac}");
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let skewed = Zipfian::new(10_000, 0.99);
        let flat = Zipfian::new(10_000, 0.2);
        let n = 50_000;
        let hot_skewed = (0..n).filter(|_| skewed.sample(&mut rng) < 100).count();
        let hot_flat = (0..n).filter(|_| flat.sample(&mut rng) < 100).count();
        assert!(hot_skewed > hot_flat * 2);
    }

    #[test]
    fn single_key_space_works() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
