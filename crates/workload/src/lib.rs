//! # transedge-workload
//!
//! The workload generator behind every experiment: "The workload
//! generator is inspired by YCSB and its transactional extensions. The
//! workload generator generates operations based on the provided
//! ratios. A key for each operation is also picked randomly. Then, a
//! group of operations are bundled into a transaction." (paper §5.1).
//!
//! Parameters mirror the paper's: total key count (1M at paper scale),
//! 4-byte keys / 256-byte values, uniform key choice via hashing
//! (zipfian offered as an extension), per-transaction read and write
//! counts, the share of each transaction type, and — for distributed
//! transactions — how many clusters each transaction spans.

pub mod spec;
pub mod zipf;

pub use spec::{KeyDistribution, Mix, WorkloadSpec};
pub use zipf::Zipfian;

#[cfg(test)]
mod tests {
    use transedge_common::ClusterTopology;
    use transedge_core::client::ClientOp;

    use crate::spec::{Mix, WorkloadSpec};

    fn topo() -> ClusterTopology {
        ClusterTopology::paper_default()
    }

    #[test]
    fn scatter_points_emit_unified_cross_partition_queries() {
        use transedge_core::{QueryShape, ReadQuery};
        let t = topo();
        let spec = WorkloadSpec::scatter_points(t.clone(), 4, 2);
        for op in spec.generate(48, 11) {
            let ClientOp::Query {
                query: ReadQuery { shape, .. },
            } = op
            else {
                panic!("scatter points must be unified queries, got {op:?}");
            };
            let QueryShape::Point { keys } = shape else {
                panic!("point shape expected");
            };
            assert!(!keys.is_empty() && keys.len() <= 4);
            let mut clusters: Vec<_> = keys.iter().map(|k| t.partition_of(k)).collect();
            clusters.sort_unstable();
            clusters.dedup();
            assert_eq!(clusters.len(), 2, "each query spans two partitions");
        }
        // The knob off keeps the classic sugar.
        for op in WorkloadSpec::read_only(t, 4, 2).generate(16, 11) {
            assert!(matches!(op, ClientOp::ReadOnly { .. }));
        }
    }

    #[test]
    fn hot_offset_moves_the_zipfian_hot_set() {
        use crate::spec::KeyDistribution;
        use std::collections::HashMap;
        use transedge_common::Key;

        let spec = WorkloadSpec {
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            ..WorkloadSpec::read_only(topo(), 5, 5)
        };
        let shifted = spec.clone().with_hot_offset(1_000);
        assert_eq!(spec.hot_offset, 0);
        assert_eq!(shifted.hot_offset, 1_000);

        let top_key = |s: &WorkloadSpec| -> Key {
            let mut counts: HashMap<Key, usize> = HashMap::new();
            for op in s.generate(400, 17) {
                let ClientOp::ReadOnly { keys } = op else {
                    panic!()
                };
                for k in keys {
                    *counts.entry(k).or_default() += 1;
                }
            }
            counts.into_iter().max_by_key(|(_, n)| *n).unwrap().0
        };
        // Same seed, same mass distribution — but the crowd lands on a
        // different hot key once the offset rotates the rank mapping.
        assert_ne!(top_key(&spec), top_key(&shifted));
    }

    #[test]
    fn generates_requested_count() {
        let spec = WorkloadSpec::paper_default(topo());
        let ops = spec.generate(100, 7);
        assert_eq!(ops.len(), 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = WorkloadSpec::paper_default(topo());
        let a = format!("{:?}", spec.generate(50, 3));
        let b = format!("{:?}", spec.generate(50, 3));
        let c = format!("{:?}", spec.generate(50, 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn read_only_mix_produces_only_rots() {
        let spec = WorkloadSpec::read_only(topo(), 5, 5);
        for op in spec.generate(64, 1) {
            match op {
                ClientOp::ReadOnly { keys } => assert_eq!(keys.len(), 5),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn rot_spans_requested_cluster_count() {
        let t = topo();
        for clusters in 1..=5usize {
            let spec = WorkloadSpec::read_only(t.clone(), clusters, clusters);
            for op in spec.generate(32, 9) {
                let ClientOp::ReadOnly { keys } = op else {
                    panic!()
                };
                let mut parts: Vec<_> = keys.iter().map(|k| t.partition_of(k)).collect();
                parts.sort_unstable();
                parts.dedup();
                assert_eq!(parts.len(), clusters, "want {clusters} clusters");
            }
        }
    }

    #[test]
    fn distributed_rw_span_follows_write_count() {
        let t = topo();
        for writes in 1..=5usize {
            let spec = WorkloadSpec::distributed_rw(t.clone(), 5, writes);
            for op in spec.generate(16, 5 + writes as u64) {
                let ClientOp::ReadWrite { reads, writes: w } = op else {
                    panic!()
                };
                assert_eq!(reads.len(), 5);
                assert_eq!(w.len(), writes);
                let mut parts: Vec<_> = reads
                    .iter()
                    .chain(w.iter().map(|(k, _)| k))
                    .map(|k| t.partition_of(k))
                    .collect();
                parts.sort_unstable();
                parts.dedup();
                // The write count bounds the participation span (§5.2:
                // "R=5,W=1 essentially means local-read-write").
                assert!(
                    parts.len() <= writes.max(1),
                    "span {} > writes {}",
                    parts.len(),
                    writes
                );
            }
        }
    }

    #[test]
    fn local_rw_stays_in_one_cluster() {
        let t = topo();
        let spec = WorkloadSpec::local_rw(t.clone(), 2, 2);
        for op in spec.generate(32, 5) {
            let ClientOp::ReadWrite { reads, writes } = op else {
                panic!()
            };
            let mut parts: Vec<_> = reads
                .iter()
                .chain(writes.iter().map(|(k, _)| k))
                .map(|k| t.partition_of(k))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            assert_eq!(parts.len(), 1);
        }
    }

    #[test]
    fn mix_ratios_roughly_hold() {
        let t = topo();
        let spec = WorkloadSpec {
            mix: Mix {
                read_only_pct: 50,
                local_rw_pct: 30,
                distributed_rw_pct: 20,
                write_only_pct: 0,
            },
            ..WorkloadSpec::paper_default(t)
        };
        let ops = spec.generate(2000, 11);
        let rot = ops
            .iter()
            .filter(|o| matches!(o, ClientOp::ReadOnly { .. }))
            .count();
        let frac = rot as f64 / ops.len() as f64;
        assert!((0.45..0.55).contains(&frac), "rot fraction {frac}");
    }

    #[test]
    fn scan_mix_produces_valid_aligned_windows() {
        let t = topo();
        let spec = WorkloadSpec {
            scan_pct: 50,
            scan_buckets: 256,
            ..WorkloadSpec::paper_default(t.clone())
        };
        let ops = spec.generate(400, 13);
        let scans: Vec<_> = ops
            .iter()
            .filter_map(|o| match o {
                ClientOp::RangeScan { cluster, range } => Some((*cluster, *range)),
                _ => None,
            })
            .collect();
        let frac = scans.len() as f64 / ops.len() as f64;
        assert!((0.4..0.6).contains(&frac), "scan fraction {frac}");
        for (cluster, range) in &scans {
            assert!(cluster.as_usize() < t.n_clusters());
            assert!(range.is_valid_for_depth(spec.tree_depth));
            assert_eq!(range.width(), 256);
            assert_eq!(range.first % 256, 0, "windows are aligned");
        }
        // The aligned vocabulary repeats windows (cache reuse fodder).
        let mut distinct: Vec<_> = scans.iter().collect();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() < scans.len());
        // 100%-scan constructor emits nothing but scans.
        for op in WorkloadSpec::scans(t, 128).generate(32, 5) {
            assert!(matches!(op, ClientOp::RangeScan { .. }));
        }
    }

    #[test]
    fn scatter_scan_mix_emits_unified_queries() {
        use transedge_core::{QueryShape, ReadQuery};
        let t = topo();
        // Two partitions, four pages per scan → every op is a unified
        // paginated scatter-gather query.
        let spec = WorkloadSpec::scatter_scans(t.clone(), 64, 2, 4);
        let ops = spec.generate(64, 17);
        assert!(!ops.is_empty());
        for op in &ops {
            let ClientOp::Query {
                query: ReadQuery { shape, .. },
            } = op
            else {
                panic!("scatter scans must be unified queries, got {op:?}");
            };
            let QueryShape::Scan {
                clusters,
                range,
                window,
            } = shape
            else {
                panic!("scan shape expected");
            };
            assert_eq!(clusters.len(), 2);
            assert_eq!(*window, 64);
            assert_eq!(range.width(), 256, "4 windows of 64 buckets");
            assert!(range.is_valid_for_depth(spec.tree_depth) || range.width() > 64);
            assert_eq!(range.first % 256, 0, "ranges are aligned");
        }
        // Single-partition single-page specs keep the classic sugar.
        for op in WorkloadSpec::scatter_scans(t, 128, 1, 1).generate(16, 3) {
            assert!(matches!(op, ClientOp::RangeScan { .. }));
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let spec = WorkloadSpec {
            n_keys: 100,
            ..WorkloadSpec::paper_default(topo())
        };
        for op in spec.generate(100, 2) {
            let keys: Vec<_> = match &op {
                ClientOp::ReadOnly { keys } => keys.clone(),
                ClientOp::ReadWrite { reads, writes } => reads
                    .iter()
                    .cloned()
                    .chain(writes.iter().map(|(k, _)| k.clone()))
                    .collect(),
                // Scans name bucket windows, not keys.
                ClientOp::RangeScan { .. } | ClientOp::Query { .. } => Vec::new(),
            };
            for k in keys {
                let i = u32::from_be_bytes(k.as_bytes().try_into().unwrap());
                assert!(i < 100);
            }
        }
    }
}
