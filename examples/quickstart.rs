//! Quickstart: bring up a two-cluster TransEdge deployment, run a
//! read-write transaction, then read it back with a *verified*
//! snapshot read-only transaction.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use transedge::common::{ClusterId, ClusterTopology, Key, SimTime, Value};
use transedge::core::client::ClientOp;
use transedge::core::setup::{Deployment, DeploymentConfig};

/// Pick `count` preloaded keys that live on `cluster`.
fn keys_on(topo: &ClusterTopology, cluster: ClusterId, count: usize) -> Vec<Key> {
    (0u32..10_000)
        .map(Key::from_u32)
        .filter(|k| topo.partition_of(k) == cluster)
        .take(count)
        .collect()
}

fn main() {
    // A deployment is described by one config: topology (clusters ×
    // 3f+1 replicas), network latency model, CPU cost model, and the
    // initial dataset. `for_testing()` is a small fast profile; swap in
    // `DeploymentConfig::default()` for the paper's 5×7 setup.
    let mut config = DeploymentConfig::for_testing();
    config.client.record_results = true;
    let topo = config.topo.clone();
    println!(
        "deployment: {} clusters × {} replicas (f = {})",
        topo.n_clusters(),
        topo.replicas_per_cluster(),
        topo.f()
    );

    // Clients run scripted operations. This script writes two keys on
    // different partitions in one distributed transaction, then reads
    // them back with a snapshot read-only transaction.
    let k0 = keys_on(&topo, ClusterId(0), 1)[0].clone();
    let k1 = keys_on(&topo, ClusterId(1), 1)[0].clone();
    let script = vec![
        ClientOp::ReadWrite {
            reads: vec![],
            writes: vec![
                (k0.clone(), Value::from("hello from cluster 0")),
                (k1.clone(), Value::from("hello from cluster 1")),
            ],
        },
        ClientOp::ReadOnly {
            keys: vec![k0.clone(), k1.clone()],
        },
    ];

    let mut deployment = Deployment::build(config, vec![script]);
    deployment.run_until_done(SimTime(60_000_000)); // 60 simulated seconds

    let client = deployment.client(deployment.client_ids[0]);

    // The write committed through BFT consensus + 2PC:
    let write_sample = &client.samples[0];
    println!(
        "distributed write: committed={} in {:.2} ms (simulated)",
        write_sample.committed,
        write_sample.latency().as_millis_f64()
    );

    // The read-only transaction was commit-free (one node per
    // partition) and fully verified: batch certificates with f+1
    // replica signatures, Merkle proofs for every key, and dependency
    // vectors checked across partitions (Algorithm 2):
    let rot_sample = &client.samples[1];
    let rot = &client.rot_results[0];
    println!(
        "snapshot read:     committed={} in {:.2} ms, round2={}, snapshot={:?}",
        rot_sample.committed,
        rot_sample.latency().as_millis_f64(),
        rot.needed_round2,
        rot.snapshot
    );
    for (key, value) in &rot.values {
        println!(
            "  {:?} -> {:?}",
            key,
            value
                .as_ref()
                .map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
        );
    }
    assert_eq!(client.stats.verification_failures, 0);
    println!("all responses verified against f+1 signatures and Merkle proofs ✓");
}
