//! Edge fleet with a gossiped health directory — one client's verified
//! byzantine catch demotes the liar for the whole fleet.
//!
//! Two clusters, two edge caches each; one edge tampers with values.
//! Client A trips over it the hard way (one rejected, proof-carrying
//! round trip), signs **evidence with the offending proof attached**,
//! and pushes it into the edge tier's anti-entropy gossip. Every edge
//! re-verifies the evidence and merges it into its directory. Client B
//! boots later, pulls a directory digest, and demotes the liar
//! *before ever contacting it* — zero rejected round trips for B, and
//! for every client after it.
//!
//! The same deployment serves a two-partition query through a single
//! edge contact (edge-tier scatter-gather): the contact splits the
//! query, forwards the foreign part across the tier, and stitches one
//! response the client verifies per partition.
//!
//! ```bash
//! cargo run --release --example edge_fleet
//! ```

use transedge::common::{ClusterId, ClusterTopology, EdgeId, Key, NodeId, SimDuration, SimTime};
use transedge::core::client::ClientOp;
use transedge::core::edge_node::EdgeBehavior;
use transedge::core::setup::{ClientPlan, Deployment, DeploymentConfig};
use transedge::core::ReadQuery;
use transedge::core::{ClientProfile, EdgeConfig};
use transedge::simnet::LatencyModel;

fn keys_on(topo: &ClusterTopology, cluster: ClusterId, count: usize) -> Vec<Key> {
    (0u32..10_000)
        .map(Key::from_u32)
        .filter(|k| topo.partition_of(k) == cluster)
        .take(count)
        .collect()
}

fn main() {
    let mut config = DeploymentConfig::for_testing();
    config.latency = LatencyModel::paper_default();
    config.client.record_results = true;
    config.client.single_contact = true;
    let byz = EdgeId::new(ClusterId(0), 0);
    config.edge = EdgeConfig::builder()
        .per_cluster(2)
        .byzantine(byz, EdgeBehavior::TamperValue)
        .gossip_directory(SimDuration::from_millis(20))
        .build()
        .expect("edge config");
    let topo = config.topo.clone();
    let k0 = keys_on(&topo, ClusterId(0), 2);
    let k1 = keys_on(&topo, ClusterId(1), 1);

    // Client A: local reads on cluster 0 — guaranteed to explore (and
    // catch) the byzantine edge.
    let a_ops: Vec<ClientOp> = (0..10)
        .map(|_| ClientOp::ReadOnly { keys: k0.clone() })
        .collect();
    // Client B: starts half a second later — after A's evidence has
    // gossiped fleet-wide — and runs cross-partition queries through a
    // single edge contact.
    let cross: Vec<Key> = k0.iter().chain(k1.iter()).cloned().collect();
    let b_ops: Vec<ClientOp> = (0..10)
        .map(|_| ClientOp::Query {
            query: ReadQuery::point(cross.clone()),
        })
        .collect();
    let late = ClientProfile::new().start_delay(SimDuration::from_millis(500));
    let mut dep = Deployment::build_custom(
        config,
        vec![
            ClientPlan::ops(a_ops),
            ClientPlan::with_profile(b_ops, late),
        ],
    );
    dep.run_until_done(SimTime(600_000_000));

    let a = dep.client(dep.client_ids[0]);
    let b = dep.client(dep.client_ids[1]);
    println!("edge fleet with gossiped health directory");
    println!("=========================================");
    println!(
        "client A: {} reads, {} forgeries caught first-hand, {} evidence record(s) gossiped",
        a.rot_results.len(),
        a.stats.verification_failures,
        a.stats.directory_evidence_sent,
    );
    let informed = dep
        .edge_ids
        .iter()
        .filter(|e| {
            dep.edge_node(**e)
                .directory()
                .is_some_and(|agent| agent.knows_byzantine(byz))
        })
        .count();
    println!(
        "fleet:    {informed}/{} edges re-verified and merged the evidence against {byz}",
        dep.edge_ids.len(),
    );
    let health = b
        .edge_selector
        .health(ClusterId(0), NodeId::Edge(byz))
        .expect("registered target");
    println!(
        "client B: seeded from a directory pull ({} digest(s)); {byz} demoted on the hint \
         (demotions {}, first-hand contacts {}), {} forgeries ever seen",
        b.stats.directory_seeded,
        health.demotions,
        health.successes + health.failures + health.total_rejections,
        b.stats.verification_failures,
    );
    println!(
        "          {} cross-partition queries served via a single edge contact \
         ({} accepted, {} fell back to fan-out)",
        b.stats.gathers_sent, b.stats.gathers_accepted, b.stats.gather_fallbacks,
    );
    assert!(a.stats.verification_failures >= 1);
    assert!(informed == dep.edge_ids.len());
    assert!(health.demotions >= 1);
    assert_eq!(b.stats.verification_failures, 0);
    assert_eq!(a.stats.gave_up + b.stats.gave_up, 0);
    println!();
    println!("one client paid for the lesson; the fleet learned it.");
}
