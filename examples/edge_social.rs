//! Edge social network — the paper's motivating GEDM scenario.
//!
//! Users are served by the edge cluster nearest to them; most
//! interactions are local (posting to your own region), but timelines
//! aggregate content across regions: exactly the "read-only
//! transactions make up most of the workload" pattern TransEdge is
//! built for (§1).
//!
//! The example runs regional posters (local read-write transactions),
//! cross-region follows (distributed read-write transactions), and
//! timeline readers (distributed snapshot read-only transactions), then
//! reports per-role latency — showing timeline reads staying flat while
//! writes pay coordination costs.
//!
//! ```bash
//! cargo run --release --example edge_social
//! ```

use transedge::common::{ClusterId, ClusterTopology, Key, SimTime, Value};
use transedge::core::client::ClientOp;
use transedge::core::metrics::{summarize, OpKind};
use transedge::core::setup::{Deployment, DeploymentConfig};
use transedge::simnet::LatencyModel;

/// `count` keys on `cluster`, skipping the first `skip` — used as user
/// profiles / post slots per region.
fn keys_on(topo: &ClusterTopology, cluster: ClusterId, count: usize, skip: usize) -> Vec<Key> {
    (0u32..10_000)
        .map(Key::from_u32)
        .filter(|k| topo.partition_of(k) == cluster)
        .skip(skip)
        .take(count)
        .collect()
}

fn main() {
    // Three regions, f = 1 (4 edge nodes per region), realistic
    // latencies: regions are ~40 ms apart, users ~2 ms from their home
    // region.
    let topo = ClusterTopology::new(3, 1).expect("topology");
    let mut latency = LatencyModel::paper_default();
    latency.inter_cluster_base = transedge::common::SimDuration::from_millis(40);
    latency.client_local = transedge::common::SimDuration::from_millis(2);
    let config = DeploymentConfig {
        topo: topo.clone(),
        latency,
        n_keys: 4096,
        ..DeploymentConfig::default()
    };

    let regions: Vec<ClusterId> = topo.clusters().collect();
    let mut scripts: Vec<Vec<ClientOp>> = Vec::new();

    // Role 1 — regional posters: write posts to their own region only.
    for (i, &region) in regions.iter().enumerate() {
        let slots = keys_on(&topo, region, 8, i * 8);
        let ops = (0..10)
            .map(|n| ClientOp::ReadWrite {
                reads: vec![],
                writes: vec![(
                    slots[n % slots.len()].clone(),
                    Value::from(format!("post #{n} from region {region}").as_str()),
                )],
            })
            .collect();
        scripts.push(ops);
    }

    // Role 2 — cross-region follows: update a follower list at home and
    // a follower count abroad in one distributed transaction.
    for (i, &region) in regions.iter().enumerate() {
        let abroad = regions[(i + 1) % regions.len()];
        let home_key = keys_on(&topo, region, 1, 100 + i)[0].clone();
        let abroad_key = keys_on(&topo, abroad, 1, 100 + i)[0].clone();
        let ops = (0..6)
            .map(|_| ClientOp::ReadWrite {
                reads: vec![home_key.clone()],
                writes: vec![
                    (home_key.clone(), Value::from("follows+1")),
                    (abroad_key.clone(), Value::from("followers+1")),
                ],
            })
            .collect();
        scripts.push(ops);
    }

    // Role 3 — timeline readers: one consistent snapshot across all
    // regions, over and over. Commit-free: a single node per region
    // answers, with proofs.
    let timeline: Vec<Key> = regions
        .iter()
        .flat_map(|&r| keys_on(&topo, r, 3, 0))
        .collect();
    for _ in 0..4 {
        let ops = (0..12)
            .map(|_| ClientOp::ReadOnly {
                keys: timeline.clone(),
            })
            .collect();
        scripts.push(ops);
    }

    let mut deployment = Deployment::build(config, scripts);
    deployment.run_until_done(SimTime(600_000_000));

    let samples = deployment.samples();
    println!("edge social network across {} regions:", regions.len());
    for (label, kind) in [
        ("regional posts      (local RW)", OpKind::LocalWriteOnly),
        (
            "cross-region follows (dist RW)",
            OpKind::DistributedReadWrite,
        ),
        ("timeline reads       (ROT)    ", OpKind::ReadOnly),
    ] {
        let s = summarize(&samples, Some(kind));
        println!(
            "  {label}: {:3} ops, {:5.1} ms mean, {:5.1} ms p99, {} aborted",
            s.count, s.mean_latency_ms, s.p99_latency_ms, s.aborted
        );
    }
    let rot = summarize(&samples, Some(OpKind::ReadOnly));
    let drw = summarize(&samples, Some(OpKind::DistributedReadWrite));
    println!(
        "\ntimeline reads run {:.1}x faster than cross-region writes,\n\
         despite touching the same {} regions — commit-free snapshot reads.",
        drw.mean_latency_ms / rot.mean_latency_ms.max(1e-9),
        regions.len()
    );
}
