//! Byzantine audit — what the Authenticated Data Structure buys you.
//!
//! A client in TransEdge reads from a *single* untrusted edge node per
//! partition. This example shows why that is safe: it queries a
//! replica, then replays the same response with tampered values /
//! proofs / certificates and watches every forgery fail verification.
//!
//! ```bash
//! cargo run --release --example byzantine_audit
//! ```

use transedge::common::{BatchNum, ClusterId, Key, SimDuration, SimTime, Value};
use transedge::consensus::messages::accept_statement;
use transedge::core::batch::Batch;
use transedge::core::client::ClientOp;
use transedge::core::setup::{Deployment, DeploymentConfig};
use transedge::crypto::merkle::{value_digest, verify_proof, Verified};

fn main() {
    // Stand up a deployment and commit a value so there is real,
    // certified state to audit.
    let mut config = DeploymentConfig::for_testing();
    config.client.record_results = true;
    let topo = config.topo.clone();
    let key = (0u32..10_000)
        .map(Key::from_u32)
        .find(|k| topo.partition_of(k) == ClusterId(0))
        .unwrap();
    let script = vec![ClientOp::ReadWrite {
        reads: vec![],
        writes: vec![(key.clone(), Value::from("audited-value"))],
    }];
    let mut deployment = Deployment::build(config.clone(), vec![script]);
    deployment.run_until_done(SimTime(60_000_000));
    println!("committed 'audited-value' through BFT consensus");

    // Pull the authenticated response pieces straight from a replica —
    // exactly what an untrusted node would serve a client.
    let replica = deployment.node(transedge::common::ReplicaId::new(ClusterId(0), 2));
    let at = BatchNum(replica.exec.applied_batches() - 1);
    let values = replica.exec.serve_rot(std::slice::from_ref(&key), at);
    let keys = deployment.keys.clone();
    let quorum = topo.certificate_quorum();

    // A real response verifies end to end.
    let proof = &values[0].proof;
    let value = values[0].value.clone().expect("value present");
    // The replica's own engine holds the decided batch + certificate.
    let sim = &deployment.sim;
    let node = sim
        .actor_as::<transedge::core::node::TransEdgeNode>(transedge::common::NodeId::Replica(
            transedge::common::ReplicaId::new(ClusterId(0), 2),
        ))
        .unwrap();
    let _ = node;
    // Roots are certified via the batch digest; fetch the header the
    // replica would send.
    let root = { replica.exec.tree.root_at(at.0) };
    match verify_proof(&root, config.node.tree_depth, &key, proof) {
        Ok(Verified::Present(vh)) if vh == value_digest(&value) => {
            println!("✓ honest response: Merkle proof verifies, value hash matches");
        }
        other => panic!("honest response failed?! {other:?}"),
    }

    // Forgery 1: lie about the value.
    let forged_value = Value::from("forged-value");
    let ok = matches!(
        verify_proof(&root, config.node.tree_depth, &key, proof),
        Ok(Verified::Present(vh)) if vh == value_digest(&forged_value)
    );
    println!(
        "✗ forged value:        {}",
        if ok {
            "ACCEPTED (BUG!)"
        } else {
            "rejected — value hash mismatch"
        }
    );
    assert!(!ok);

    // Forgery 2: tamper with the proof path.
    let mut bad_proof = proof.clone();
    if let Some(s) = bad_proof.siblings.first_mut() {
        s.0[0] ^= 0xFF;
    }
    let rejected = verify_proof(&root, config.node.tree_depth, &key, &bad_proof).is_err();
    println!(
        "✗ tampered proof:      {}",
        if rejected {
            "rejected — root mismatch"
        } else {
            "ACCEPTED (BUG!)"
        }
    );
    assert!(rejected);

    // Forgery 3: a malicious node invents its own state root and
    // "certifies" it without a quorum (fewer than f+1 signatures).
    let fake_root = transedge::crypto::sha256(b"state the node wishes existed");
    let fake_header = transedge::core::batch::BatchHeader {
        cluster: ClusterId(0),
        num: at,
        cd: transedge::core::batch::CdVector::new(topo.n_clusters()),
        lce: transedge::common::Epoch::NONE,
        merkle_root: fake_root,
        delta_digest: transedge::crypto::sha256(b"forged delta digest"),
        timestamp: SimTime::ZERO,
    };
    let fake_digest = Batch::digest_from_parts(&fake_header, &fake_digest_body());
    let stmt = accept_statement(ClusterId(0), at, &fake_digest);
    let _ = stmt;
    let cert = transedge::consensus::Certificate {
        cluster: ClusterId(0),
        slot: at,
        digest: fake_digest,
        sigs: vec![], // a lone byzantine node has no quorum to offer
    };
    let rejected = cert.verify(&keys, quorum).is_err();
    println!(
        "✗ under-signed root:   {}",
        if rejected {
            "rejected — needs f+1 distinct replica signatures"
        } else {
            "ACCEPTED (BUG!)"
        }
    );
    assert!(rejected);

    println!("\nevery forgery was caught by client-side verification —");
    println!("this is why a TransEdge read needs only ONE node per partition.");
    let _ = SimDuration::ZERO;
}

fn fake_digest_body() -> transedge::crypto::Digest {
    transedge::crypto::sha256(b"empty")
}
