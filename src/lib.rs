//! Umbrella crate re-exporting the TransEdge workspace.
//!
//! Most users should depend on the individual crates; this crate exists
//! so the repository's `examples/` and integration `tests/` have a
//! single anchor package.

pub use transedge_baselines as baselines;
pub use transedge_common as common;
pub use transedge_consensus as consensus;
pub use transedge_core as core;
pub use transedge_crypto as crypto;
pub use transedge_directory as directory;
pub use transedge_edge as edge;
pub use transedge_obs as obs;
pub use transedge_scenario as scenario;
pub use transedge_simnet as simnet;
pub use transedge_storage as storage;
pub use transedge_workload as workload;
